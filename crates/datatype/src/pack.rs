//! The pack/unpack engine.
//!
//! Converts between a user buffer laid out according to a datatype and a
//! contiguous packed representation, exactly as `MPI_Pack`/`MPI_Unpack`
//! (and the internals of any MPI implementation sending a derived type)
//! must. Three code paths, selected automatically:
//!
//! 1. **contiguous** — one `memcpy` when the type is a dense run;
//! 2. **strided** — a tight fixed-blocklength loop for vector-like types
//!    (including 2-D subarrays), the case the paper benchmarks;
//! 3. **generic** — streaming segment iteration for arbitrary trees.
//!
//! All offsets are validated against the user buffer; packing never reads
//! and unpacking never writes out of bounds.

use crate::error::{DatatypeError, Result};
use crate::node::{ArrayOrder, Block, Datatype, Kind};
use crate::segiter::SegIter;

/// A normalized strided description: `nblocks` runs of `block_len` bytes,
/// starting at `base` and advancing `stride` bytes per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strided {
    /// Byte offset of the first run, relative to the instance origin.
    pub base: i64,
    /// Number of runs.
    pub nblocks: u64,
    /// Bytes per run.
    pub block_len: u64,
    /// Byte distance between run starts.
    pub stride: i64,
}

/// Recognize a single instance of the type as a regular strided pattern.
///
/// Returns `None` for irregular or nested-irregular types; those take the
/// generic path.
pub fn strided_form(dtype: &Datatype) -> Option<Strided> {
    if let Some(b) = dtype.dense_block() {
        return Some(Strided { base: b.offset, nblocks: 1, block_len: b.len, stride: 0 });
    }
    match dtype.kind() {
        Kind::Vector { count, blocklen, stride, child } => {
            let b = child.dense_block()?;
            let ext = child.extent_i64();
            if ext != b.len as i64 && *blocklen > 1 {
                return None;
            }
            Some(Strided {
                base: b.offset,
                nblocks: *count,
                block_len: b.len * *blocklen,
                stride: stride * ext,
            })
        }
        Kind::Hvector { count, blocklen, stride_bytes, child } => {
            let b = child.dense_block()?;
            let ext = child.extent_i64();
            if ext != b.len as i64 && *blocklen > 1 {
                return None;
            }
            Some(Strided {
                base: b.offset,
                nblocks: *count,
                block_len: b.len * *blocklen,
                stride: *stride_bytes,
            })
        }
        Kind::Subarray { sizes, subsizes, starts, order, child } => {
            let b = child.dense_block()?;
            let ext = child.extent_i64();
            if ext != b.len as i64 {
                return None;
            }
            // Regular pattern iff at most one outer (non-run) dimension.
            let ndims = sizes.len();
            let mut stride = vec![1u64; ndims];
            match order {
                ArrayOrder::C => {
                    for d in (0..ndims.saturating_sub(1)).rev() {
                        stride[d] = stride[d + 1] * sizes[d + 1];
                    }
                }
                ArrayOrder::Fortran => {
                    for d in 1..ndims {
                        stride[d] = stride[d - 1] * sizes[d - 1];
                    }
                }
            }
            let locality: Vec<usize> = match order {
                ArrayOrder::C => (0..ndims).collect(),
                ArrayOrder::Fortran => (0..ndims).rev().collect(),
            };
            let mut run_elems = 1u64;
            let mut fixed = 0u64;
            let mut outer: Vec<usize> = Vec::new();
            let mut still_inner = true;
            for &d in locality.iter().rev() {
                if still_inner {
                    if subsizes[d] == sizes[d] {
                        run_elems *= sizes[d];
                        continue;
                    }
                    run_elems *= subsizes[d];
                    fixed += starts[d] * stride[d];
                    still_inner = false;
                } else if subsizes[d] == 1 {
                    fixed += starts[d] * stride[d];
                } else {
                    outer.push(d);
                }
            }
            if subsizes.contains(&0) {
                return Some(Strided { base: 0, nblocks: 0, block_len: 0, stride: 0 });
            }
            match outer.len() {
                0 => Some(Strided {
                    base: fixed as i64 * ext + b.offset,
                    nblocks: 1,
                    block_len: run_elems * b.len,
                    stride: 0,
                }),
                1 => {
                    let d = outer[0];
                    Some(Strided {
                        base: (fixed + starts[d] * stride[d]) as i64 * ext + b.offset,
                        nblocks: subsizes[d],
                        block_len: run_elems * b.len,
                        stride: stride[d] as i64 * ext,
                    })
                }
                _ => None,
            }
        }
        Kind::Resized { child, .. } => strided_form(child),
        _ => None,
    }
}

/// Number of packed bytes for `count` instances (`MPI_Pack_size`, exact).
pub fn pack_size(dtype: &Datatype, count: usize) -> Result<usize> {
    dtype
        .size()
        .checked_mul(count as u64)
        .and_then(|n| usize::try_from(n).ok())
        .ok_or(DatatypeError::Overflow)
}

fn check_block(origin: usize, b: Block, buf_len: usize) -> Result<(usize, usize)> {
    let from = origin as i64 + b.offset;
    let to = from + b.len as i64;
    if from < 0 || to < from || to as u64 > buf_len as u64 {
        return Err(DatatypeError::OutOfBounds { needed_from: from, needed_to: to, buffer_len: buf_len });
    }
    Ok((from as usize, to as usize))
}

/// Copy one strided instance user->packed. Small fixed block lengths get
/// dedicated loops so the compiler emits straight-line copies.
fn pack_strided(src: &[u8], origin: usize, s: Strided, dst: &mut [u8]) -> Result<usize> {
    let total = (s.nblocks * s.block_len) as usize;
    if dst.len() < total {
        return Err(DatatypeError::BufferTooSmall { needed: total, available: dst.len() });
    }
    if s.nblocks == 0 || s.block_len == 0 {
        return Ok(0);
    }
    // Validate the first and last block; interior blocks are between them
    // for monotone strides, and validated individually otherwise.
    let bl = s.block_len as usize;
    let monotone = s.stride >= s.block_len as i64 || s.nblocks == 1;
    if monotone {
        check_block(origin, Block { offset: s.base, len: s.block_len }, src.len())?;
        check_block(
            origin,
            Block { offset: s.base + (s.nblocks as i64 - 1) * s.stride, len: s.block_len },
            src.len(),
        )?;
        let start = (origin as i64 + s.base) as usize;
        let stride = s.stride as usize;
        match bl {
            4 => strided_copy_fixed::<4>(src, start, stride, s.nblocks as usize, dst),
            8 => strided_copy_fixed::<8>(src, start, stride, s.nblocks as usize, dst),
            16 => strided_copy_fixed::<16>(src, start, stride, s.nblocks as usize, dst),
            _ => {
                for j in 0..s.nblocks as usize {
                    let off = start + j * stride;
                    dst[j * bl..(j + 1) * bl].copy_from_slice(&src[off..off + bl]);
                }
            }
        }
    } else {
        for j in 0..s.nblocks as usize {
            let b = Block { offset: s.base + j as i64 * s.stride, len: s.block_len };
            let (from, to) = check_block(origin, b, src.len())?;
            dst[j * bl..(j + 1) * bl].copy_from_slice(&src[from..to]);
        }
    }
    Ok(total)
}

fn strided_copy_fixed<const BL: usize>(
    src: &[u8],
    start: usize,
    stride: usize,
    nblocks: usize,
    dst: &mut [u8],
) {
    for (j, out) in dst[..nblocks * BL].chunks_exact_mut(BL).enumerate() {
        let off = start + j * stride;
        out.copy_from_slice(&src[off..off + BL]);
    }
}

fn unpack_strided_mut(dst: &mut [u8], origin: usize, s: Strided, packed: &[u8]) -> Result<usize> {
    let total = (s.nblocks * s.block_len) as usize;
    if packed.len() < total {
        return Err(DatatypeError::BufferTooSmall { needed: total, available: packed.len() });
    }
    if s.nblocks == 0 || s.block_len == 0 {
        return Ok(0);
    }
    let bl = s.block_len as usize;
    let monotone = s.stride >= s.block_len as i64 || s.nblocks == 1;
    if monotone {
        check_block(origin, Block { offset: s.base, len: s.block_len }, dst.len())?;
        check_block(
            origin,
            Block { offset: s.base + (s.nblocks as i64 - 1) * s.stride, len: s.block_len },
            dst.len(),
        )?;
        let start = (origin as i64 + s.base) as usize;
        let stride = s.stride as usize;
        match bl {
            4 => strided_scatter_fixed::<4>(dst, start, stride, s.nblocks as usize, packed),
            8 => strided_scatter_fixed::<8>(dst, start, stride, s.nblocks as usize, packed),
            16 => strided_scatter_fixed::<16>(dst, start, stride, s.nblocks as usize, packed),
            _ => {
                for j in 0..s.nblocks as usize {
                    let off = start + j * stride;
                    dst[off..off + bl].copy_from_slice(&packed[j * bl..(j + 1) * bl]);
                }
            }
        }
    } else {
        for j in 0..s.nblocks as usize {
            let b = Block { offset: s.base + j as i64 * s.stride, len: s.block_len };
            let (from, to) = check_block(origin, b, dst.len())?;
            dst[from..to].copy_from_slice(&packed[j * bl..(j + 1) * bl]);
        }
    }
    Ok(total)
}

fn strided_scatter_fixed<const BL: usize>(
    dst: &mut [u8],
    start: usize,
    stride: usize,
    nblocks: usize,
    packed: &[u8],
) {
    for (j, input) in packed[..nblocks * BL].chunks_exact(BL).enumerate() {
        let off = start + j * stride;
        dst[off..off + BL].copy_from_slice(input);
    }
}

/// Pack `count` instances of `dtype` read from `src` (instance 0 origin at
/// byte `origin`) into `dst`. Returns the number of packed bytes written.
///
/// Committed types go through the compiled-plan engine (see
/// [`crate::plan`]): the kernel program is fetched from the bounded plan
/// cache (compiled on first use) and executed, parallelized for large
/// payloads. Everything else falls back to [`pack_into_uncompiled`].
pub fn pack_into(
    src: &[u8],
    origin: usize,
    dtype: &Datatype,
    count: usize,
    dst: &mut [u8],
) -> Result<usize> {
    if let Some(plan) = crate::plan::plan_for(dtype, count) {
        return plan.pack_into(src, origin, dst);
    }
    pack_into_uncompiled(src, origin, dtype, count, dst)
}

/// Pack with the compiled plan pinned to a single worker — the serial
/// kernel the runtime degrades to when a parallel pack worker fails.
/// Bypasses the size-threshold auto-parallelization of [`pack_into`];
/// types without a compiled plan use the uncompiled interpreter, which
/// is serial anyway.
pub fn pack_into_serial(
    src: &[u8],
    origin: usize,
    dtype: &Datatype,
    count: usize,
    dst: &mut [u8],
) -> Result<usize> {
    if let Some(plan) = crate::plan::plan_for(dtype, count) {
        return plan.pack_into_with(src, origin, dst, 1);
    }
    pack_into_uncompiled(src, origin, dtype, count, dst)
}

/// The uncompiled reference engine: selects the contiguous / strided /
/// generic path per call without consulting the plan cache. Kept public
/// for benches and differential tests against the compiled engine.
pub fn pack_into_uncompiled(
    src: &[u8],
    origin: usize,
    dtype: &Datatype,
    count: usize,
    dst: &mut [u8],
) -> Result<usize> {
    let total = pack_size(dtype, count)?;
    if dst.len() < total {
        return Err(DatatypeError::BufferTooSmall { needed: total, available: dst.len() });
    }
    if total == 0 {
        return Ok(0);
    }
    // Path 1: fully contiguous run.
    if dtype.is_contiguous_run(count as u64) {
        let b = dtype.dense_block().expect("contiguous run implies dense");
        let from = origin as i64 + b.offset;
        let end = from + total as i64;
        if from < 0 || end as u64 > src.len() as u64 {
            return Err(DatatypeError::OutOfBounds {
                needed_from: from,
                needed_to: end,
                buffer_len: src.len(),
            });
        }
        dst[..total].copy_from_slice(&src[from as usize..end as usize]);
        return Ok(total);
    }
    // Path 2: strided instances.
    if let Some(s) = strided_form(dtype) {
        let inst = dtype.size() as usize;
        let ext = dtype.extent_i64();
        let mut written = 0;
        for i in 0..count {
            let s_i = Strided { base: s.base + i as i64 * ext, ..s };
            written += pack_strided(src, origin, s_i, &mut dst[i * inst..(i + 1) * inst])?;
        }
        return Ok(written);
    }
    // Path 3a: committed types with a materialized segment list — iterate
    // the flat slice (per instance) instead of running the frame machine.
    if let Some(flat) = dtype.flattened() {
        let ext = dtype.extent_i64();
        let mut pos = 0usize;
        for i in 0..count as i64 {
            let shift = i * ext;
            for b in flat.iter() {
                let b = Block { offset: b.offset + shift, len: b.len };
                let (from, to) = check_block(origin, b, src.len())?;
                dst[pos..pos + b.len as usize].copy_from_slice(&src[from..to]);
                pos += b.len as usize;
            }
        }
        debug_assert_eq!(pos, total);
        return Ok(pos);
    }
    // Path 3b: streaming segment walk.
    let mut pos = 0usize;
    for b in SegIter::new(dtype, count as u64) {
        let (from, to) = check_block(origin, b, src.len())?;
        dst[pos..pos + b.len as usize].copy_from_slice(&src[from..to]);
        pos += b.len as usize;
    }
    debug_assert_eq!(pos, total);
    Ok(pos)
}

/// Unpack `count` instances of `dtype` from `packed` into the user buffer
/// `dst` (instance 0 origin at byte `origin`). Returns bytes consumed.
///
/// Committed types use the compiled-plan engine; see [`pack_into`].
pub fn unpack_from(
    packed: &[u8],
    dtype: &Datatype,
    count: usize,
    dst: &mut [u8],
    origin: usize,
) -> Result<usize> {
    if let Some(plan) = crate::plan::plan_for(dtype, count) {
        return plan.unpack_from(packed, dst, origin);
    }
    unpack_from_uncompiled(packed, dtype, count, dst, origin)
}

/// Uncompiled reference unpack; counterpart of [`pack_into_uncompiled`].
pub fn unpack_from_uncompiled(
    packed: &[u8],
    dtype: &Datatype,
    count: usize,
    dst: &mut [u8],
    origin: usize,
) -> Result<usize> {
    let total = pack_size(dtype, count)?;
    if packed.len() < total {
        return Err(DatatypeError::BufferTooSmall { needed: total, available: packed.len() });
    }
    if total == 0 {
        return Ok(0);
    }
    if dtype.is_contiguous_run(count as u64) {
        let b = dtype.dense_block().expect("contiguous run implies dense");
        let from = origin as i64 + b.offset;
        let end = from + total as i64;
        if from < 0 || end as u64 > dst.len() as u64 {
            return Err(DatatypeError::OutOfBounds {
                needed_from: from,
                needed_to: end,
                buffer_len: dst.len(),
            });
        }
        dst[from as usize..end as usize].copy_from_slice(&packed[..total]);
        return Ok(total);
    }
    if let Some(s) = strided_form(dtype) {
        let inst = dtype.size() as usize;
        let ext = dtype.extent_i64();
        let mut consumed = 0;
        for i in 0..count {
            let s_i = Strided { base: s.base + i as i64 * ext, ..s };
            consumed += unpack_strided_mut(dst, origin, s_i, &packed[i * inst..(i + 1) * inst])?;
        }
        return Ok(consumed);
    }
    if let Some(flat) = dtype.flattened() {
        let ext = dtype.extent_i64();
        let mut pos = 0usize;
        for i in 0..count as i64 {
            let shift = i * ext;
            for b in flat.iter() {
                let from = origin as i64 + b.offset + shift;
                let to = from + b.len as i64;
                if from < 0 || to as u64 > dst.len() as u64 {
                    return Err(DatatypeError::OutOfBounds {
                        needed_from: from,
                        needed_to: to,
                        buffer_len: dst.len(),
                    });
                }
                dst[from as usize..to as usize]
                    .copy_from_slice(&packed[pos..pos + b.len as usize]);
                pos += b.len as usize;
            }
        }
        debug_assert_eq!(pos, total);
        return Ok(pos);
    }
    let mut pos = 0usize;
    for b in SegIter::new(dtype, count as u64) {
        let from = origin as i64 + b.offset;
        let to = from + b.len as i64;
        if from < 0 || to as u64 > dst.len() as u64 {
            return Err(DatatypeError::OutOfBounds { needed_from: from, needed_to: to, buffer_len: dst.len() });
        }
        dst[from as usize..to as usize].copy_from_slice(&packed[pos..pos + b.len as usize]);
        pos += b.len as usize;
    }
    debug_assert_eq!(pos, total);
    Ok(pos)
}

/// Convenience: pack into a fresh `Vec`.
///
/// The output is built in reserved capacity filled directly by the pack
/// engine — no zero-initializing memset of `total` bytes beforehand.
pub fn pack(src: &[u8], origin: usize, dtype: &Datatype, count: usize) -> Result<Vec<u8>> {
    let total = pack_size(dtype, count)?;
    let mut out = Vec::with_capacity(total);
    // SAFETY: `spare` views the reserved capacity. Every engine path only
    // ever *writes* through the destination slice (memcpy-style), never
    // reads it, and `set_len` runs only after a successful pack has
    // written all `total` bytes; on error the Vec keeps length 0.
    let spare = unsafe { std::slice::from_raw_parts_mut(out.as_mut_ptr(), total) };
    let written = pack_into(src, origin, dtype, count, spare)?;
    debug_assert_eq!(written, total);
    // SAFETY: `written == total` bytes of the capacity are initialized.
    unsafe { out.set_len(written) };
    Ok(out)
}

/// Incremental packing with an explicit position cursor — the exact
/// `MPI_Pack(inbuf, incount, datatype, outbuf, outsize, &position)` shape.
pub fn pack_with_position(
    src: &[u8],
    origin: usize,
    dtype: &Datatype,
    count: usize,
    outbuf: &mut [u8],
    position: &mut usize,
) -> Result<()> {
    if *position > outbuf.len() {
        return Err(DatatypeError::InvalidPosition { position: *position, buffer_len: outbuf.len() });
    }
    let written = pack_into(src, origin, dtype, count, &mut outbuf[*position..])?;
    *position += written;
    Ok(())
}

/// Incremental unpacking with an explicit position cursor (`MPI_Unpack`).
pub fn unpack_with_position(
    inbuf: &[u8],
    position: &mut usize,
    dtype: &Datatype,
    count: usize,
    dst: &mut [u8],
    origin: usize,
) -> Result<()> {
    if *position > inbuf.len() {
        return Err(DatatypeError::InvalidPosition { position: *position, buffer_len: inbuf.len() });
    }
    let consumed = unpack_from(&inbuf[*position..], dtype, count, dst, origin)?;
    *position += consumed;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64s(n: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(n * 8);
        for i in 0..n {
            v.extend_from_slice(&(i as f64).to_le_bytes());
        }
        v
    }

    #[test]
    fn pack_contiguous_is_identity() {
        let src = f64s(16);
        let d = Datatype::contiguous(16, &Datatype::f64()).unwrap().commit();
        let p = pack(&src, 0, &d, 1).unwrap();
        assert_eq!(p, src);
    }

    #[test]
    fn pack_into_serial_matches_default_engine() {
        let src = f64s(64);
        let d = Datatype::vector(16, 1, 2, &Datatype::f64()).unwrap().commit();
        let mut fast = vec![0u8; 16 * 8 * 2];
        let mut serial = vec![0u8; 16 * 8 * 2];
        let a = pack_into(&src, 0, &d, 2, &mut fast).unwrap();
        let b = pack_into_serial(&src, 0, &d, 2, &mut serial).unwrap();
        assert_eq!(a, b);
        assert_eq!(fast, serial);
        // Uncommitted types have no compiled plan; the serial entry point
        // must still pack them (via the uncompiled interpreter).
        let raw = Datatype::vector(16, 1, 2, &Datatype::f64()).unwrap();
        let mut uncompiled = vec![0u8; 16 * 8 * 2];
        let c = pack_into_serial(&src, 0, &raw, 2, &mut uncompiled).unwrap();
        assert_eq!(c, a);
        assert_eq!(uncompiled, fast);
    }

    #[test]
    fn pack_vector_every_other() {
        let src = f64s(8);
        let d = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap().commit();
        let p = pack(&src, 0, &d, 1).unwrap();
        let expect: Vec<u8> = [0.0f64, 2.0, 4.0, 6.0]
            .iter()
            .flat_map(|x| x.to_le_bytes())
            .collect();
        assert_eq!(p, expect);
    }

    #[test]
    fn roundtrip_vector() {
        let src = f64s(20);
        let d = Datatype::vector(10, 1, 2, &Datatype::f64()).unwrap().commit();
        let p = pack(&src, 0, &d, 1).unwrap();
        let mut dst = vec![0u8; src.len()];
        unpack_from(&p, &d, 1, &mut dst, 0).unwrap();
        // even elements restored, odd remain zero
        for i in 0..20 {
            let got = f64::from_le_bytes(dst[i * 8..i * 8 + 8].try_into().unwrap());
            if i % 2 == 0 {
                assert_eq!(got, i as f64);
            } else {
                assert_eq!(got, 0.0);
            }
        }
    }

    #[test]
    fn roundtrip_generic_indexed() {
        let src = f64s(32);
        let d = Datatype::indexed(&[(3, 1), (2, 9), (1, 30)], &Datatype::f64())
            .unwrap()
            .commit();
        let p = pack(&src, 0, &d, 1).unwrap();
        assert_eq!(p.len(), 6 * 8);
        let mut dst = vec![0u8; src.len()];
        unpack_from(&p, &d, 1, &mut dst, 0).unwrap();
        for i in [1usize, 2, 3, 9, 10, 30] {
            assert_eq!(&dst[i * 8..i * 8 + 8], &src[i * 8..i * 8 + 8]);
        }
        assert_eq!(&dst[0..8], &[0u8; 8]);
    }

    #[test]
    fn pack_multiple_instances() {
        let src = f64s(12);
        // extent 3 f64s: one element then skip 2
        let base = Datatype::vector(1, 1, 1, &Datatype::f64()).unwrap();
        let d = Datatype::resized(&base, 0, 24).unwrap().commit();
        let p = pack(&src, 0, &d, 4).unwrap();
        let expect: Vec<u8> = [0.0f64, 3.0, 6.0, 9.0]
            .iter()
            .flat_map(|x| x.to_le_bytes())
            .collect();
        assert_eq!(p, expect);
    }

    #[test]
    fn origin_shifts_reads() {
        let src = f64s(8);
        let d = Datatype::vector(2, 1, 2, &Datatype::f64()).unwrap().commit();
        let p = pack(&src, 8, &d, 1).unwrap();
        let expect: Vec<u8> = [1.0f64, 3.0].iter().flat_map(|x| x.to_le_bytes()).collect();
        assert_eq!(p, expect);
    }

    #[test]
    fn out_of_bounds_detected() {
        let src = f64s(4);
        let d = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap().commit();
        assert!(matches!(
            pack(&src, 0, &d, 1),
            Err(DatatypeError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn dst_too_small_detected() {
        let src = f64s(8);
        let d = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap().commit();
        let mut dst = vec![0u8; 8];
        assert!(matches!(
            pack_into(&src, 0, &d, 1, &mut dst),
            Err(DatatypeError::BufferTooSmall { .. })
        ));
    }

    #[test]
    fn position_cursor_accumulates() {
        let src = f64s(8);
        let one = Datatype::f64();
        let mut out = vec![0u8; 64];
        let mut pos = 0usize;
        for i in 0..4 {
            pack_with_position(&src, i * 16, &one, 1, &mut out, &mut pos).unwrap();
        }
        assert_eq!(pos, 32);
        let expect: Vec<u8> = [0.0f64, 2.0, 4.0, 6.0]
            .iter()
            .flat_map(|x| x.to_le_bytes())
            .collect();
        assert_eq!(&out[..32], &expect[..]);
    }

    #[test]
    fn unpack_position_roundtrip() {
        let src = f64s(6);
        let d = Datatype::vector(3, 1, 2, &Datatype::f64()).unwrap().commit();
        let mut out = vec![0u8; 24];
        let mut pos = 0usize;
        pack_with_position(&src, 0, &d, 1, &mut out, &mut pos).unwrap();
        assert_eq!(pos, 24);
        let mut dst = vec![0u8; 48];
        let mut rpos = 0usize;
        unpack_with_position(&out, &mut rpos, &d, 1, &mut dst, 0).unwrap();
        assert_eq!(rpos, 24);
        for i in [0usize, 2, 4] {
            assert_eq!(&dst[i * 8..i * 8 + 8], &src[i * 8..i * 8 + 8]);
        }
    }

    #[test]
    fn strided_form_of_vector() {
        let d = Datatype::vector(10, 2, 5, &Datatype::f64()).unwrap();
        let s = strided_form(&d).unwrap();
        assert_eq!(s, Strided { base: 0, nblocks: 10, block_len: 16, stride: 40 });
    }

    #[test]
    fn strided_form_of_2d_subarray() {
        let d = Datatype::subarray(&[8, 10], &[8, 4], &[0, 3], ArrayOrder::C, &Datatype::f64())
            .unwrap();
        let s = strided_form(&d).unwrap();
        assert_eq!(s, Strided { base: 24, nblocks: 8, block_len: 32, stride: 80 });
    }

    #[test]
    fn strided_form_rejects_irregular() {
        let d = Datatype::indexed(&[(1, 0), (2, 5)], &Datatype::f64()).unwrap();
        assert!(strided_form(&d).is_none());
    }

    #[test]
    fn subarray_pack_matches_generic() {
        // strided path vs generic path must agree
        let src = f64s(64);
        let d = Datatype::subarray(&[8, 8], &[5, 3], &[2, 4], ArrayOrder::C, &Datatype::f64())
            .unwrap()
            .commit();
        let fast = pack(&src, 0, &d, 1).unwrap();
        let mut slow = vec![0u8; fast.len()];
        let mut pos = 0;
        for b in SegIter::new(&d, 1) {
            let from = b.offset as usize;
            slow[pos..pos + b.len as usize].copy_from_slice(&src[from..from + b.len as usize]);
            pos += b.len as usize;
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn negative_stride_vector_roundtrip() {
        let src = f64s(8);
        let d = Datatype::vector(3, 1, -2, &Datatype::f64()).unwrap().commit();
        // origin must sit high enough that offsets stay in bounds
        let p = pack(&src, 40, &d, 1).unwrap();
        let expect: Vec<u8> = [5.0f64, 3.0, 1.0].iter().flat_map(|x| x.to_le_bytes()).collect();
        assert_eq!(p, expect);
        let mut dst = vec![0u8; 64];
        unpack_from(&p, &d, 1, &mut dst, 40).unwrap();
        assert_eq!(&dst[40..48], &src[40..48]);
        assert_eq!(&dst[24..32], &src[24..32]);
        assert_eq!(&dst[8..16], &src[8..16]);
    }

    #[test]
    fn struct_pack_roundtrip() {
        // {i32 a; f64 b;} with C layout
        let d = Datatype::structure(&[(1, 0, Datatype::i32()), (1, 8, Datatype::f64())])
            .unwrap()
            .commit();
        assert_eq!(d.extent(), 16);
        let mut src = vec![0u8; 32];
        src[0..4].copy_from_slice(&7i32.to_le_bytes());
        src[8..16].copy_from_slice(&1.5f64.to_le_bytes());
        src[16..20].copy_from_slice(&8i32.to_le_bytes());
        src[24..32].copy_from_slice(&2.5f64.to_le_bytes());
        let p = pack(&src, 0, &d, 2).unwrap();
        assert_eq!(p.len(), 24);
        let mut dst = vec![0u8; 32];
        unpack_from(&p, &d, 2, &mut dst, 0).unwrap();
        assert_eq!(dst[0..4], src[0..4]);
        assert_eq!(dst[8..16], src[8..16]);
        assert_eq!(dst[16..20], src[16..20]);
        assert_eq!(dst[24..32], src[24..32]);
        // padding bytes untouched
        assert_eq!(&dst[4..8], &[0u8; 4]);
    }

    #[test]
    fn empty_type_packs_to_nothing() {
        let d = Datatype::vector(0, 1, 2, &Datatype::f64()).unwrap().commit();
        assert_eq!(pack(&[], 0, &d, 1).unwrap(), Vec::<u8>::new());
        assert_eq!(pack_size(&d, 100).unwrap(), 0);
    }
}
