//! Type signatures.
//!
//! MPI requires the *signature* (the sequence of primitive types, ignoring
//! displacements) of a send to match the signature of the receive. We track
//! a slightly relaxed form — the multiset of primitives — which is cheap to
//! compute compositionally and catches every mismatch the paper's workloads
//! could produce (the relaxation only admits reorderings *within* a message
//! of the same primitives, which no real scheme here generates).

use crate::error::{DatatypeError, Result};
use crate::primitive::Primitive;

/// Multiset of primitive leaf types making up a datatype.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Signature {
    counts: [u64; Primitive::ALL.len()],
}

impl Signature {
    /// The empty signature (zero-size type).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Signature of a single primitive.
    pub fn of(p: Primitive) -> Self {
        let mut s = Self::default();
        s.counts[p.index()] = 1;
        s
    }

    /// Number of occurrences of primitive `p`.
    pub fn count(&self, p: Primitive) -> u64 {
        self.counts[p.index()]
    }

    /// This signature repeated `k` times.
    pub fn scaled(&self, k: u64) -> Result<Self> {
        let mut out = Self::default();
        for (o, c) in out.counts.iter_mut().zip(self.counts.iter()) {
            *o = c.checked_mul(k).ok_or(DatatypeError::Overflow)?;
        }
        Ok(out)
    }

    /// Union (concatenation) of two signatures.
    pub fn plus(&self, other: &Self) -> Result<Self> {
        let mut out = Self::default();
        for ((o, a), b) in out.counts.iter_mut().zip(self.counts.iter()).zip(other.counts.iter()) {
            *o = a.checked_add(*b).ok_or(DatatypeError::Overflow)?;
        }
        Ok(out)
    }

    /// Total number of primitive elements.
    pub fn total_elements(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total payload bytes described.
    pub fn total_bytes(&self) -> u64 {
        Primitive::ALL
            .iter()
            .map(|p| self.counts[p.index()] * p.size() as u64)
            .sum()
    }

    /// Whether `self` repeated `self_count` times matches `other` repeated
    /// `other_count` times — the send/recv matching rule.
    pub fn matches(&self, self_count: u64, other: &Self, other_count: u64) -> bool {
        Primitive::ALL.iter().all(|p| {
            let a = self.counts[p.index()].checked_mul(self_count);
            let b = other.counts[p.index()].checked_mul(other_count);
            match (a, b) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
        })
    }

    /// A byte-oriented signature is compatible with anything of equal size;
    /// MPI_BYTE matching is special-cased by the runtime using this.
    pub fn is_bytes_only(&self) -> bool {
        Primitive::ALL.iter().all(|p| {
            matches!(p, Primitive::Byte | Primitive::Packed) || self.counts[p.index()] == 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_and_plus_compose() {
        let d = Signature::of(Primitive::Float64);
        let i = Signature::of(Primitive::Int32);
        let s = d.scaled(3).unwrap().plus(&i.scaled(2).unwrap()).unwrap();
        assert_eq!(s.count(Primitive::Float64), 3);
        assert_eq!(s.count(Primitive::Int32), 2);
        assert_eq!(s.total_elements(), 5);
        assert_eq!(s.total_bytes(), 3 * 8 + 2 * 4);
    }

    #[test]
    fn matching_accounts_for_counts() {
        let d = Signature::of(Primitive::Float64);
        let d4 = d.scaled(4).unwrap();
        assert!(d.matches(4, &d4, 1));
        assert!(!d.matches(3, &d4, 1));
        assert!(d4.matches(2, &d, 8));
    }

    #[test]
    fn scaled_overflow_detected() {
        let d = Signature::of(Primitive::Byte).scaled(u64::MAX / 2).unwrap();
        assert_eq!(d.scaled(3), Err(DatatypeError::Overflow));
    }

    #[test]
    fn bytes_only_detection() {
        assert!(Signature::of(Primitive::Byte).is_bytes_only());
        assert!(Signature::empty().is_bytes_only());
        assert!(!Signature::of(Primitive::Float64).is_bytes_only());
    }
}
