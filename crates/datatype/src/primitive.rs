//! Primitive (named, predefined) datatypes — the leaves of every type tree.
//!
//! These mirror MPI's predefined types (`MPI_BYTE`, `MPI_INT`, `MPI_DOUBLE`,
//! …). Each primitive has a size and a natural alignment; alignment feeds
//! into struct extent padding exactly as the MPI "epsilon" rule does for C
//! structs.

use std::fmt;

/// A predefined leaf datatype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Primitive {
    /// One uninterpreted byte (`MPI_BYTE`).
    Byte,
    /// Signed 8-bit integer (`MPI_INT8_T`).
    Int8,
    /// Unsigned 8-bit integer (`MPI_UINT8_T`).
    UInt8,
    /// Signed 16-bit integer (`MPI_INT16_T` / `MPI_SHORT`).
    Int16,
    /// Unsigned 16-bit integer (`MPI_UINT16_T`).
    UInt16,
    /// Signed 32-bit integer (`MPI_INT32_T` / `MPI_INT`).
    Int32,
    /// Unsigned 32-bit integer (`MPI_UINT32_T`).
    UInt32,
    /// Signed 64-bit integer (`MPI_INT64_T` / `MPI_LONG` on LP64).
    Int64,
    /// Unsigned 64-bit integer (`MPI_UINT64_T`).
    UInt64,
    /// IEEE-754 single precision (`MPI_FLOAT`).
    Float32,
    /// IEEE-754 double precision (`MPI_DOUBLE`).
    Float64,
    /// Complex of two `f32` (`MPI_C_FLOAT_COMPLEX`).
    Complex64,
    /// Complex of two `f64` (`MPI_C_DOUBLE_COMPLEX`).
    Complex128,
    /// Output of `pack` (`MPI_PACKED`): one byte, matches any signature.
    Packed,
}

impl Primitive {
    /// All primitives, in a fixed order (used for signature accounting).
    pub const ALL: [Primitive; 14] = [
        Primitive::Byte,
        Primitive::Int8,
        Primitive::UInt8,
        Primitive::Int16,
        Primitive::UInt16,
        Primitive::Int32,
        Primitive::UInt32,
        Primitive::Int64,
        Primitive::UInt64,
        Primitive::Float32,
        Primitive::Float64,
        Primitive::Complex64,
        Primitive::Complex128,
        Primitive::Packed,
    ];

    /// Size of one element in bytes.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            Primitive::Byte | Primitive::Int8 | Primitive::UInt8 | Primitive::Packed => 1,
            Primitive::Int16 | Primitive::UInt16 => 2,
            Primitive::Int32 | Primitive::UInt32 | Primitive::Float32 => 4,
            Primitive::Int64 | Primitive::UInt64 | Primitive::Float64 | Primitive::Complex64 => 8,
            Primitive::Complex128 => 16,
        }
    }

    /// Natural alignment in bytes (what a C compiler would use).
    ///
    /// Complex types align as their component, matching C's `_Complex`.
    #[inline]
    pub const fn align(self) -> usize {
        match self {
            Primitive::Complex64 => 4,
            Primitive::Complex128 => 8,
            other => other.size(),
        }
    }

    /// Stable small index used for signature accounting.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Primitive::Byte => 0,
            Primitive::Int8 => 1,
            Primitive::UInt8 => 2,
            Primitive::Int16 => 3,
            Primitive::UInt16 => 4,
            Primitive::Int32 => 5,
            Primitive::UInt32 => 6,
            Primitive::Int64 => 7,
            Primitive::UInt64 => 8,
            Primitive::Float32 => 9,
            Primitive::Float64 => 10,
            Primitive::Complex64 => 11,
            Primitive::Complex128 => 12,
            Primitive::Packed => 13,
        }
    }

    /// MPI-style name, for diagnostics.
    pub const fn name(self) -> &'static str {
        match self {
            Primitive::Byte => "BYTE",
            Primitive::Int8 => "INT8",
            Primitive::UInt8 => "UINT8",
            Primitive::Int16 => "INT16",
            Primitive::UInt16 => "UINT16",
            Primitive::Int32 => "INT32",
            Primitive::UInt32 => "UINT32",
            Primitive::Int64 => "INT64",
            Primitive::UInt64 => "UINT64",
            Primitive::Float32 => "FLOAT32",
            Primitive::Float64 => "FLOAT64",
            Primitive::Complex64 => "COMPLEX64",
            Primitive::Complex128 => "COMPLEX128",
            Primitive::Packed => "PACKED",
        }
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Maps a Rust scalar type onto the matching [`Primitive`].
///
/// This is how the typed convenience APIs (`send_slice::<f64>` etc.) pick
/// their leaf datatype.
pub trait Scalar: Copy + Send + Sync + 'static {
    /// The primitive datatype describing `Self`.
    const PRIMITIVE: Primitive;
}

macro_rules! impl_scalar {
    ($($t:ty => $p:expr),* $(,)?) => {
        $(impl Scalar for $t { const PRIMITIVE: Primitive = $p; })*
    };
}

impl_scalar! {
    u8 => Primitive::UInt8,
    i8 => Primitive::Int8,
    u16 => Primitive::UInt16,
    i16 => Primitive::Int16,
    u32 => Primitive::UInt32,
    i32 => Primitive::Int32,
    u64 => Primitive::UInt64,
    i64 => Primitive::Int64,
    f32 => Primitive::Float32,
    f64 => Primitive::Float64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_consistent_with_rust() {
        assert_eq!(Primitive::Float64.size(), std::mem::size_of::<f64>());
        assert_eq!(Primitive::Int32.size(), std::mem::size_of::<i32>());
        assert_eq!(Primitive::Complex128.size(), 2 * std::mem::size_of::<f64>());
    }

    #[test]
    fn alignment_never_exceeds_size() {
        for p in Primitive::ALL {
            assert!(p.align() <= p.size(), "{p}: align {} > size {}", p.align(), p.size());
            assert!(p.align().is_power_of_two());
        }
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; Primitive::ALL.len()];
        for p in Primitive::ALL {
            assert!(!seen[p.index()], "duplicate index for {p}");
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scalar_trait_matches() {
        assert_eq!(<f64 as Scalar>::PRIMITIVE, Primitive::Float64);
        assert_eq!(<u8 as Scalar>::PRIMITIVE, Primitive::UInt8);
        assert_eq!(<i64 as Scalar>::PRIMITIVE, Primitive::Int64);
    }
}
