//! Compiled pack plans: cached kernel programs for the pack engine.
//!
//! Walking a datatype tree (even through the coalescing [`SegIter`]) costs
//! branchy per-segment work on every pack call. A [`PackPlan`] pays that
//! cost once: the segment stream of **one instance** is canonicalized into
//! a short program of typed ops — a single memcpy for dense runs, a
//! strided descriptor for runs of equal-length blocks, plain copies for
//! the rest — plus instance-tiling metadata `(count, extent)` so a plan
//! for `(datatype, count)` stays O(segments-per-instance) in memory no
//! matter how large `count` is. Execution hands each op to the
//! runtime-dispatched kernel tier in [`crate::kernels`] (AVX2/SSE2/NEON/
//! scalar, selected once per process, `NONCTG_SIMD` to override), which
//! also supplies non-temporal streaming stores for packs larger than the
//! last-level cache and a `pshufb` record-transpose kernel for small
//! all-`Copy` struct plans.
//!
//! Plans for committed types live behind a bounded LRU cache keyed by
//! [`Datatype::type_id`] (see [`plan_for`]), so the sweep's
//! commit-once-pack-repeatedly pattern never re-walks the tree.
//!
//! Payloads at or above [`parallel_threshold`] bytes are partitioned at
//! segment boundaries into chunks claimed dynamically by the persistent
//! worker pool in `kernels::pool` (plus the calling thread), each writing
//! a disjoint destination slice. This is a pure **wall-clock**
//! optimization: the virtual-time cost model in `core::packbuf` /
//! `simnet::cost` charges for packed bytes exactly as before and is
//! unaffected by the thread count or kernel tier.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::{DatatypeError, Result};
use crate::kernels::{self, Exec, RecordField, RecordKernel, SimdTier};
use crate::node::Datatype;
use crate::pack::{strided_form, Strided};
use crate::segiter::SegIter;

/// Compilation bails out (falling back to the uncompiled engine) once a
/// single instance needs more than this many ops.
pub const MAX_PLAN_OPS: usize = 1 << 16;

/// Maximum number of `(datatype, count)` entries the process-wide plan
/// cache retains; beyond this the least-recently-used entry is evicted.
pub const PLAN_CACHE_CAP: usize = 128;

/// One kernel invocation of a compiled plan, covering a contiguous range
/// of the packed representation. Offsets are relative to the instance
/// origin (before the per-instance extent shift).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanOp {
    /// One dense run: `len` bytes at user offset `src`.
    Copy { src: i64, len: u64 },
    /// `nblocks` runs of `block_len` bytes, `stride` bytes apart,
    /// starting at user offset `base`.
    Strided { base: i64, nblocks: u64, block_len: u64, stride: i64 },
}

impl PlanOp {
    #[inline]
    fn packed_bytes(&self) -> u64 {
        match *self {
            PlanOp::Copy { len, .. } => len,
            PlanOp::Strided { nblocks, block_len, .. } => nblocks * block_len,
        }
    }
}

/// A compiled pack program for `count` instances of one datatype.
///
/// Immutable once built: execution takes `&self`, so a cached plan can be
/// shared (via `Arc`) by any number of concurrent pack calls.
#[derive(Debug)]
pub struct PackPlan {
    /// Kernel program for one instance, in typemap (packed) order.
    ops: Vec<PlanOp>,
    /// Packed-byte prefix sums per op: `dst_off[i]` is where op `i`
    /// starts within one instance; `dst_off.last() == inst_size`.
    dst_off: Vec<u64>,
    /// Packed bytes per instance.
    inst_size: u64,
    /// Number of instances. Dense tilings are folded to a single
    /// whole-message instance at compile time.
    count: u64,
    /// Byte shift between consecutive instances in the user buffer.
    extent: i64,
    /// Lowest user-buffer byte touched by instance 0.
    user_lo: i64,
    /// One past the highest user-buffer byte touched by instance 0.
    user_hi: i64,
    /// Whether blocks are pairwise disjoint and monotone in the user
    /// buffer, making partitioned parallel *unpack* safe. Parallel pack is
    /// always safe (workers write disjoint packed slices).
    par_safe: bool,
    /// Whole-instance transpose kernel, compiled when the plan is a
    /// small all-`Copy` record (interleaved struct); lifts the
    /// per-instance op-walk overhead that floors struct pack bandwidth.
    record: Option<RecordKernel>,
}

/// Accumulates blocks into a canonical op program.
struct Builder {
    ops: Vec<PlanOp>,
    /// Bytes emitted so far (must equal the instance size at finish).
    cursor: u64,
    /// End of the highest block seen, for monotonicity tracking.
    prev_end: i64,
    par_safe: bool,
    lo: i64,
    hi: i64,
    any: bool,
}

impl Builder {
    fn new() -> Self {
        Builder { ops: Vec::new(), cursor: 0, prev_end: 0, par_safe: true, lo: 0, hi: 0, any: false }
    }

    /// Record bounds / monotonicity for one block without emitting an op.
    fn note(&mut self, off: i64, len: u64) -> Option<()> {
        let end = off.checked_add(i64::try_from(len).ok()?)?;
        if self.any {
            if off < self.prev_end {
                self.par_safe = false;
            }
            self.lo = self.lo.min(off);
            self.hi = self.hi.max(end);
            self.prev_end = self.prev_end.max(end);
        } else {
            self.any = true;
            self.lo = off;
            self.hi = end;
            self.prev_end = end;
        }
        self.cursor = self.cursor.checked_add(len)?;
        Some(())
    }

    /// Append one coalesced block, merging regular patterns into strided
    /// ops: equal-length blocks at a constant pitch collapse to a single
    /// `Strided` op regardless of how many there are.
    fn push_block(&mut self, off: i64, len: u64) -> Option<()> {
        if len == 0 {
            return Some(());
        }
        self.note(off, len)?;
        match self.ops.last_mut() {
            Some(PlanOp::Strided { base, nblocks, block_len, stride })
                if *block_len == len && off == *base + *nblocks as i64 * *stride =>
            {
                *nblocks += 1;
                return Some(());
            }
            Some(PlanOp::Copy { src, len: plen }) if *plen == len && off != *src => {
                let op = PlanOp::Strided {
                    base: *src,
                    nblocks: 2,
                    block_len: len,
                    stride: off - *src,
                };
                *self.ops.last_mut().unwrap() = op;
                return Some(());
            }
            Some(PlanOp::Copy { src, len: plen }) if off == *src + *plen as i64 => {
                // Defensive: inputs are already coalesced, but merge anyway.
                *plen += len;
                return Some(());
            }
            _ => {}
        }
        if self.ops.len() >= MAX_PLAN_OPS {
            return None;
        }
        self.ops.push(PlanOp::Copy { src: off, len });
        Some(())
    }

    /// Append an already-recognized strided pattern as one op.
    fn push_strided(&mut self, s: Strided) -> Option<()> {
        if s.nblocks == 0 || s.block_len == 0 {
            return Some(());
        }
        if s.nblocks == 1 {
            return self.push_block(s.base, s.block_len);
        }
        let bl = i64::try_from(s.block_len).ok()?;
        let last = s.base.checked_add((s.nblocks as i64 - 1).checked_mul(s.stride)?)?;
        let (lo, hi) = if s.stride >= 0 {
            (s.base, last.checked_add(bl)?)
        } else {
            (last, s.base.checked_add(bl)?)
        };
        if self.any {
            if s.stride < bl || s.base < self.prev_end {
                self.par_safe = false;
            }
            self.lo = self.lo.min(lo);
            self.hi = self.hi.max(hi);
            self.prev_end = self.prev_end.max(hi);
        } else {
            self.any = true;
            self.lo = lo;
            self.hi = hi;
            self.prev_end = hi;
            if s.stride < bl {
                self.par_safe = false;
            }
        }
        self.cursor = self.cursor.checked_add(s.nblocks.checked_mul(s.block_len)?)?;
        if self.ops.len() >= MAX_PLAN_OPS {
            return None;
        }
        self.ops.push(PlanOp::Strided {
            base: s.base,
            nblocks: s.nblocks,
            block_len: s.block_len,
            stride: s.stride,
        });
        Some(())
    }

    fn finish(self, inst_size: u64, count: u64, extent: i64) -> Option<PackPlan> {
        if self.cursor != inst_size {
            return None; // defensive: program must cover the instance exactly
        }
        let mut dst_off = Vec::with_capacity(self.ops.len() + 1);
        let mut pos = 0u64;
        for op in &self.ops {
            dst_off.push(pos);
            pos = pos.checked_add(op.packed_bytes())?;
        }
        dst_off.push(pos);
        if pos != inst_size {
            return None;
        }
        // Instances tile by `extent`; they stay pairwise disjoint iff one
        // instance's true span fits within the extent.
        let span_fits = self.hi.checked_sub(self.lo)? <= extent;
        let par_safe = self.par_safe && (count <= 1 || span_fits);
        // Small all-`Copy` multi-instance plans (interleaved structs)
        // additionally compile to a whole-instance record kernel.
        let record = if count > 1
            && extent > 0
            && inst_size <= RecordKernel::MAX_INST as u64
            && self.ops.len() <= RecordKernel::MAX_FIELDS
        {
            self.ops
                .iter()
                .zip(dst_off.iter())
                .map(|(op, &d)| match *op {
                    PlanOp::Copy { src, len } => {
                        Some(RecordField { src, dst: d as u32, len: len as u32 })
                    }
                    PlanOp::Strided { .. } => None,
                })
                .collect::<Option<Vec<_>>>()
                .and_then(|fields| RecordKernel::new(fields, inst_size as usize, extent))
        } else {
            None
        };
        Some(PackPlan {
            ops: self.ops,
            dst_off,
            inst_size,
            count,
            extent,
            user_lo: self.lo,
            user_hi: self.hi,
            par_safe,
            record,
        })
    }
}

impl PackPlan {
    /// Compile a plan for `count` instances of `dtype`.
    ///
    /// Returns `None` when the type is not plannable — more than
    /// [`MAX_PLAN_OPS`] coalesced segments per instance, or arithmetic
    /// overflow in offsets — in which case callers fall back to the
    /// uncompiled engine.
    pub fn compile(dtype: &Datatype, count: usize) -> Option<PackPlan> {
        let total = dtype.size().checked_mul(count as u64)?;
        usize::try_from(total).ok()?;
        if total == 0 {
            return Some(PackPlan {
                ops: Vec::new(),
                dst_off: vec![0],
                inst_size: 0,
                count: 0,
                extent: 0,
                user_lo: 0,
                user_hi: 0,
                par_safe: true,
                record: None,
            });
        }
        let extent = dtype.ub().checked_sub(dtype.lb())?;
        if extent < 0 && count > 1 {
            return None;
        }
        // Dense tiling folds to a single whole-message memcpy instance.
        if dtype.is_contiguous_run(count as u64) {
            let b = dtype.dense_block()?;
            let mut bld = Builder::new();
            bld.push_block(b.offset, total)?;
            return bld.finish(total, 1, 0);
        }
        let mut bld = Builder::new();
        if let Some(s) = strided_form(dtype) {
            bld.push_strided(s)?;
        } else if let Some(flat) = dtype.flattened() {
            for b in flat.iter() {
                bld.push_block(b.offset, b.len)?;
            }
        } else {
            for b in SegIter::new(dtype, 1) {
                bld.push_block(b.offset, b.len)?;
            }
        }
        bld.finish(dtype.size(), count as u64, extent)
    }

    /// Total packed bytes this plan produces/consumes.
    #[inline]
    pub fn packed_len(&self) -> usize {
        (self.inst_size * self.count) as usize
    }

    /// Number of kernel ops per instance.
    #[inline]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Whether partitioned parallel *unpack* is permitted (blocks are
    /// monotone and pairwise disjoint in the user buffer).
    #[inline]
    pub fn par_safe(&self) -> bool {
        self.par_safe
    }

    /// The `(offset, len)` region list of the full message in typemap
    /// order, relative to the message origin — an iovec descriptor built
    /// without materializing a pack buffer (the safe analogue of mpicd's
    /// `MemRegions`). Adjacent regions are merged; returns `None` when the
    /// message needs more than `cap` regions, in which case callers should
    /// use a staged pack instead.
    pub fn regions(&self, cap: usize) -> Option<Vec<(i64, u64)>> {
        // Pre-merge block count: instance tiling never merges across the
        // boundary unless the whole run is dense, which compile() already
        // folded into a single Copy op.
        let per_inst: u64 = self
            .ops
            .iter()
            .map(|op| match *op {
                PlanOp::Copy { .. } => 1,
                PlanOp::Strided { nblocks, .. } => nblocks,
            })
            .sum();
        if per_inst.checked_mul(self.count)? > cap as u64 {
            return None;
        }
        let mut out: Vec<(i64, u64)> = Vec::with_capacity((per_inst * self.count) as usize);
        let push = |out: &mut Vec<(i64, u64)>, off: i64, len: u64| {
            if len == 0 {
                return;
            }
            match out.last_mut() {
                Some((po, pl)) if off == *po + *pl as i64 => *pl += len,
                _ => out.push((off, len)),
            }
        };
        for i in 0..self.count {
            let shift = i as i64 * self.extent;
            for op in &self.ops {
                match *op {
                    PlanOp::Copy { src, len } => push(&mut out, shift + src, len),
                    PlanOp::Strided { base, nblocks, block_len, stride } => {
                        for j in 0..nblocks as i64 {
                            push(&mut out, shift + base + j * stride, block_len);
                        }
                    }
                }
            }
        }
        Some(out)
    }

    /// Validate that every byte the plan touches lies inside the user
    /// buffer, in one aggregate check instead of per-segment checks.
    fn validate_user(&self, buf_len: usize, origin: usize) -> Result<()> {
        if self.packed_len() == 0 {
            return Ok(());
        }
        let o = origin as i128;
        let from = o + self.user_lo as i128;
        let to = o + self.user_hi as i128 + (self.count as i128 - 1) * self.extent as i128;
        if from < 0 || to < from || to > buf_len as i128 {
            return Err(DatatypeError::OutOfBounds {
                needed_from: from.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
                needed_to: to.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
                buffer_len: buf_len,
            });
        }
        Ok(())
    }

    /// Pack into `dst`, parallelizing above [`parallel_threshold`].
    /// Returns packed bytes written.
    pub fn pack_into(&self, src: &[u8], origin: usize, dst: &mut [u8]) -> Result<usize> {
        let threads =
            if self.packed_len() >= parallel_threshold() { pack_threads() } else { 1 };
        self.pack_into_with(src, origin, dst, threads)
    }

    /// Pack into `dst` with an explicit worker count (1 = sequential),
    /// ignoring the size threshold. Exposed for benches and differential
    /// tests of the parallel path.
    pub fn pack_into_with(
        &self,
        src: &[u8],
        origin: usize,
        dst: &mut [u8],
        threads: usize,
    ) -> Result<usize> {
        self.pack_into_exec(src, origin, dst, threads, Exec::for_pack(self.packed_len()))
    }

    /// [`Self::pack_into_with`] under an explicit kernel tier and
    /// streaming-store choice, bypassing the process-wide `NONCTG_SIMD`
    /// selection — the hook the differential tests use to prove every
    /// tier packs byte-identically.
    pub fn pack_into_forced(
        &self,
        src: &[u8],
        origin: usize,
        dst: &mut [u8],
        threads: usize,
        tier: SimdTier,
        stream: bool,
    ) -> Result<usize> {
        let ex = Exec { tier, stream: stream && tier.has_streaming() };
        self.pack_into_exec(src, origin, dst, threads, ex)
    }

    fn pack_into_exec(
        &self,
        src: &[u8],
        origin: usize,
        dst: &mut [u8],
        threads: usize,
        ex: Exec,
    ) -> Result<usize> {
        let total = self.packed_len();
        if dst.len() < total {
            return Err(DatatypeError::BufferTooSmall { needed: total, available: dst.len() });
        }
        if total == 0 {
            return Ok(0);
        }
        self.validate_user(src.len(), origin)?;
        let dst = &mut dst[..total];
        let cuts = self.split_points(chunk_parts(threads));
        if cuts.len() <= 2 {
            // SAFETY: `validate_user` succeeded above, so every plan block
            // lies within `src`.
            unsafe { self.pack_range(src, origin as i64, dst, 0, total as u64, ex) };
            return Ok(total);
        }
        let base = SendPtr(dst.as_mut_ptr());
        kernels::pool::run(cuts.len() - 1, &|k| {
            let (lo, hi) = (cuts[k], cuts[k + 1]);
            // SAFETY: chunk windows are disjoint, so each pool worker
            // writes a disjoint slice of `dst`; reads of `src` may
            // overlap. Bounds per `validate_user` above.
            unsafe {
                let chunk =
                    std::slice::from_raw_parts_mut(base.get().add(lo as usize), (hi - lo) as usize);
                self.pack_range(src, origin as i64, chunk, lo, hi, ex);
            }
        });
        Ok(total)
    }

    /// Unpack from `packed`, parallelizing above [`parallel_threshold`]
    /// when the plan is [`Self::par_safe`]. Returns packed bytes consumed.
    pub fn unpack_from(&self, packed: &[u8], dst: &mut [u8], origin: usize) -> Result<usize> {
        let threads =
            if self.packed_len() >= parallel_threshold() { pack_threads() } else { 1 };
        self.unpack_from_with(packed, dst, origin, threads)
    }

    /// Unpack with an explicit worker count, ignoring the size threshold.
    /// Non-`par_safe` plans are forced sequential regardless of `threads`.
    pub fn unpack_from_with(
        &self,
        packed: &[u8],
        dst: &mut [u8],
        origin: usize,
        threads: usize,
    ) -> Result<usize> {
        self.unpack_from_exec(packed, dst, origin, threads, Exec::no_stream(kernels::simd_tier()))
    }

    /// [`Self::unpack_from_with`] under an explicit kernel tier (scatter
    /// never streams); the differential-test hook for the unpack side.
    pub fn unpack_from_forced(
        &self,
        packed: &[u8],
        dst: &mut [u8],
        origin: usize,
        threads: usize,
        tier: SimdTier,
    ) -> Result<usize> {
        self.unpack_from_exec(packed, dst, origin, threads, Exec::no_stream(tier))
    }

    fn unpack_from_exec(
        &self,
        packed: &[u8],
        dst: &mut [u8],
        origin: usize,
        threads: usize,
        ex: Exec,
    ) -> Result<usize> {
        let total = self.packed_len();
        if packed.len() < total {
            return Err(DatatypeError::BufferTooSmall { needed: total, available: packed.len() });
        }
        if total == 0 {
            return Ok(0);
        }
        self.validate_user(dst.len(), origin)?;
        let packed = &packed[..total];
        let threads = if self.par_safe { threads } else { 1 };
        let cuts = self.split_points(chunk_parts(threads));
        if cuts.len() <= 2 {
            // SAFETY: exclusive access via `&mut dst`; all offsets were
            // validated against `dst.len()` above.
            unsafe {
                self.unpack_range(packed, dst.as_mut_ptr(), origin as i64, 0, total as u64, ex)
            };
            return Ok(total);
        }
        let base = SendPtr(dst.as_mut_ptr());
        kernels::pool::run(cuts.len() - 1, &|k| {
            let (lo, hi) = (cuts[k], cuts[k + 1]);
            // SAFETY: `par_safe` (checked above) guarantees distinct
            // packed ranges scatter to pairwise-disjoint user bytes,
            // so concurrent writes never alias; bounds validated.
            unsafe {
                self.unpack_range(
                    &packed[lo as usize..hi as usize],
                    base.get(),
                    origin as i64,
                    lo,
                    hi,
                    ex,
                )
            }
        });
        Ok(total)
    }

    /// Clamp a packed-byte position to the message and round it down to
    /// the nearest block boundary — the only positions the sub-range API
    /// ([`Self::pack_range_into`] / [`Self::unpack_range_from`]) accepts.
    /// Chunked senders pick their chunk ends with this.
    pub fn align_chunk(&self, pos: u64) -> u64 {
        let total = self.packed_len() as u64;
        if pos >= total {
            return total;
        }
        self.align_cut(pos)
    }

    /// Reject sub-range bounds that are out of order, past the end, or not
    /// block-aligned (a misaligned cut would gather/scatter wrong bytes:
    /// the range kernels assume whole blocks).
    fn check_range(&self, lo: u64, hi: u64) -> Result<()> {
        let total = self.packed_len() as u64;
        for &pos in &[lo, hi] {
            if pos > total || self.align_chunk(pos) != pos {
                return Err(DatatypeError::InvalidPosition {
                    position: pos as usize,
                    buffer_len: total as usize,
                });
            }
        }
        if lo > hi {
            return Err(DatatypeError::InvalidPosition {
                position: lo as usize,
                buffer_len: hi as usize,
            });
        }
        Ok(())
    }

    /// Gather packed bytes `[lo, hi)` of the message into `dst` — one
    /// chunk of a streamed send. Bounds must be [`Self::align_chunk`]
    /// positions. Parallelizes above [`parallel_threshold`]; returns the
    /// bytes written (`hi - lo`).
    pub fn pack_range_into(
        &self,
        src: &[u8],
        origin: usize,
        dst: &mut [u8],
        lo: u64,
        hi: u64,
    ) -> Result<usize> {
        let threads =
            if (hi.saturating_sub(lo)) as usize >= parallel_threshold() { pack_threads() } else { 1 };
        self.pack_range_into_with(src, origin, dst, lo, hi, threads)
    }

    /// [`Self::pack_range_into`] with an explicit worker count, ignoring
    /// the size threshold.
    pub fn pack_range_into_with(
        &self,
        src: &[u8],
        origin: usize,
        dst: &mut [u8],
        lo: u64,
        hi: u64,
        threads: usize,
    ) -> Result<usize> {
        self.check_range(lo, hi)?;
        let n = (hi - lo) as usize;
        if dst.len() < n {
            return Err(DatatypeError::BufferTooSmall { needed: n, available: dst.len() });
        }
        if n == 0 {
            return Ok(0);
        }
        self.validate_user(src.len(), origin)?;
        let dst = &mut dst[..n];
        let ex = Exec::for_pack(n);
        let cuts = self.split_range(lo, hi, chunk_parts(threads));
        if cuts.len() <= 2 {
            // SAFETY: `validate_user` succeeded above, so every plan block
            // lies within `src`; bounds are block-aligned per check_range.
            unsafe { self.pack_range(src, origin as i64, dst, lo, hi, ex) };
            return Ok(n);
        }
        let base = SendPtr(dst.as_mut_ptr());
        kernels::pool::run(cuts.len() - 1, &|k| {
            let (l, h) = (cuts[k], cuts[k + 1]);
            // SAFETY: as the sequential branch; each pool worker writes a
            // disjoint slice of `dst`.
            unsafe {
                let chunk = std::slice::from_raw_parts_mut(
                    base.get().add((l - lo) as usize),
                    (h - l) as usize,
                );
                self.pack_range(src, origin as i64, chunk, l, h, ex);
            }
        });
        Ok(n)
    }

    /// Scatter packed bytes `[lo, hi)` (supplied in `packed`) into the
    /// user buffer in place — one chunk of a streamed receive. Bounds must
    /// be [`Self::align_chunk`] positions. Sequential (exclusive `&mut`
    /// access makes it safe for any plan, `par_safe` or not); returns the
    /// bytes consumed.
    pub fn unpack_range_from(
        &self,
        packed: &[u8],
        dst: &mut [u8],
        origin: usize,
        lo: u64,
        hi: u64,
    ) -> Result<usize> {
        self.check_range(lo, hi)?;
        let n = (hi - lo) as usize;
        if packed.len() < n {
            return Err(DatatypeError::BufferTooSmall { needed: n, available: packed.len() });
        }
        if n == 0 {
            return Ok(0);
        }
        self.validate_user(dst.len(), origin)?;
        let ex = Exec::no_stream(kernels::simd_tier());
        // SAFETY: exclusive access via `&mut dst`; all offsets validated
        // against `dst.len()` above; bounds block-aligned per check_range.
        unsafe { self.unpack_range(&packed[..n], dst.as_mut_ptr(), origin as i64, lo, hi, ex) };
        Ok(n)
    }

    /// Packed-byte positions to cut the message at for `parts` chunks:
    /// evenly spaced targets rounded down to segment boundaries.
    fn split_points(&self, parts: usize) -> Vec<u64> {
        self.split_range(0, self.packed_len() as u64, parts)
    }

    /// As [`Self::split_points`], but over the sub-range `[lo, hi)` (whose
    /// bounds must themselves be aligned).
    fn split_range(&self, lo: u64, hi: u64, parts: usize) -> Vec<u64> {
        let parts = parts.clamp(1, 256) as u64;
        let mut cuts = vec![lo];
        for k in 1..parts {
            let target = lo + (((hi - lo) as u128 * k as u128) / parts as u128) as u64;
            let c = self.align_cut(target);
            if c > *cuts.last().unwrap() && c < hi {
                cuts.push(c);
            }
        }
        cuts.push(hi);
        cuts
    }

    /// Round a packed position down to the nearest block boundary, so a
    /// worker's range covers whole blocks only.
    fn align_cut(&self, t: u64) -> u64 {
        let inst = t / self.inst_size;
        let rel = t % self.inst_size;
        let i = match self.dst_off.binary_search(&rel) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        if i >= self.ops.len() {
            return t;
        }
        let aligned = match self.ops[i] {
            PlanOp::Copy { .. } => rel,
            PlanOp::Strided { block_len, .. } => {
                let op_lo = self.dst_off[i];
                op_lo + (rel - op_lo) / block_len * block_len
            }
        };
        inst * self.inst_size + aligned
    }

    /// Gather packed bytes `[lo, hi)` into `dst` (of length `hi - lo`).
    ///
    /// # Safety
    /// Caller must have run [`Self::validate_user`] against this `src`
    /// length and `origin`: the kernels elide per-block bounds checks.
    unsafe fn pack_range(&self, src: &[u8], origin: i64, dst: &mut [u8], lo: u64, hi: u64, ex: Exec) {
        debug_assert_eq!(dst.len() as u64, hi - lo);
        let mut out = dst;
        let mut pos = lo;
        // Partial head instance (a thread cut landed mid-instance).
        if !pos.is_multiple_of(self.inst_size) {
            let inst = pos / self.inst_size;
            let inst_lo = inst * self.inst_size;
            let seg_hi = hi.min(inst_lo + self.inst_size);
            let base = origin + inst as i64 * self.extent;
            let (chunk, rest) = out.split_at_mut((seg_hi - pos) as usize);
            // SAFETY: forwarded caller contract.
            unsafe {
                self.pack_instance_range(src, base, chunk, pos - inst_lo, seg_hi - inst_lo, ex)
            };
            out = rest;
            pos = seg_hi;
        }
        // Whole instances.
        let whole = (hi - pos) / self.inst_size;
        if whole > 0 {
            if let Some(rk) = record_for(self, ex) {
                // Record plans transpose every whole instance in one
                // kernel call: no per-instance op walk or slicing.
                let nbytes = (whole * self.inst_size) as usize;
                let (chunk, rest) = out.split_at_mut(nbytes);
                let base = origin + (pos / self.inst_size) as i64 * self.extent;
                // SAFETY: forwarded caller contract.
                unsafe { rk.gather(ex, src, base, whole as usize, chunk) };
                out = rest;
                pos += whole * self.inst_size;
            } else {
                // Straight op walk, no searches, no clamping.
                while pos + self.inst_size <= hi {
                    let base = origin + (pos / self.inst_size) as i64 * self.extent;
                    let (chunk, rest) = out.split_at_mut(self.inst_size as usize);
                    // SAFETY: forwarded caller contract.
                    unsafe { self.pack_instance_full(src, base, chunk, ex) };
                    out = rest;
                    pos += self.inst_size;
                }
            }
        }
        // Partial tail instance.
        if pos < hi {
            let inst = pos / self.inst_size;
            let base = origin + inst as i64 * self.extent;
            // SAFETY: forwarded caller contract.
            unsafe { self.pack_instance_range(src, base, out, 0, hi - inst * self.inst_size, ex) };
        }
    }

    /// Gather one whole instance whose origin is user-buffer byte `base`.
    ///
    /// # Safety
    /// As [`Self::pack_range`].
    unsafe fn pack_instance_full(&self, src: &[u8], base: i64, out: &mut [u8], ex: Exec) {
        let mut out = out;
        for (i, op) in self.ops.iter().enumerate() {
            let n = (self.dst_off[i + 1] - self.dst_off[i]) as usize;
            let (chunk, rest) = out.split_at_mut(n);
            // SAFETY (both arms): every block was validated in-bounds.
            match *op {
                PlanOp::Copy { src: s, .. } => unsafe {
                    kernels::copy_run(src.as_ptr().add((base + s) as usize), chunk.as_mut_ptr(), n);
                },
                PlanOp::Strided { base: b, block_len, stride, .. } => unsafe {
                    kernels::gather_blocks(ex, src, base + b, stride, block_len as usize, chunk);
                },
            }
            out = rest;
        }
    }

    /// Gather instance-relative packed bytes `[ilo, ihi)`; `base` is the
    /// user-buffer byte address of this instance's origin.
    ///
    /// # Safety
    /// As [`Self::pack_range`].
    unsafe fn pack_instance_range(
        &self,
        src: &[u8],
        base: i64,
        out: &mut [u8],
        ilo: u64,
        ihi: u64,
        ex: Exec,
    ) {
        let mut i = match self.dst_off.binary_search(&ilo) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let mut out = out;
        let mut pos = ilo;
        while pos < ihi {
            let op_lo = self.dst_off[i];
            let take_hi = ihi.min(self.dst_off[i + 1]);
            let n = (take_hi - pos) as usize;
            let (chunk, rest) = out.split_at_mut(n);
            // SAFETY (both arms): every block was validated in-bounds.
            match self.ops[i] {
                PlanOp::Copy { src: s, .. } => {
                    let from = (base + s) as usize + (pos - op_lo) as usize;
                    unsafe { kernels::copy_run(src.as_ptr().add(from), chunk.as_mut_ptr(), n) };
                }
                PlanOp::Strided { base: b, block_len, stride, .. } => {
                    // Cuts are block-aligned, so this range is whole blocks.
                    let j0 = (pos - op_lo) / block_len;
                    let first = base + b + j0 as i64 * stride;
                    unsafe {
                        kernels::gather_blocks(ex, src, first, stride, block_len as usize, chunk)
                    };
                }
            }
            out = rest;
            pos = take_hi;
            i += 1;
        }
    }

    /// Scatter `packed` (packed bytes `[lo, hi)`) into the user buffer at
    /// `dst`.
    ///
    /// # Safety
    /// Caller guarantees every scattered byte lies within the allocation
    /// at `dst` (validated against the buffer length) and that no other
    /// thread concurrently writes any byte this range touches.
    unsafe fn unpack_range(
        &self,
        packed: &[u8],
        dst: *mut u8,
        origin: i64,
        lo: u64,
        hi: u64,
        ex: Exec,
    ) {
        debug_assert_eq!(packed.len() as u64, hi - lo);
        let mut input = packed;
        let mut pos = lo;
        // Partial head instance (a thread cut landed mid-instance).
        if !pos.is_multiple_of(self.inst_size) {
            let inst = pos / self.inst_size;
            let inst_lo = inst * self.inst_size;
            let seg_hi = hi.min(inst_lo + self.inst_size);
            let base = origin + inst as i64 * self.extent;
            let (chunk, rest) = input.split_at((seg_hi - pos) as usize);
            // SAFETY: forwarded caller contract.
            unsafe {
                self.unpack_instance_range(chunk, dst, base, pos - inst_lo, seg_hi - inst_lo, ex)
            };
            input = rest;
            pos = seg_hi;
        }
        // Whole instances.
        let whole = (hi - pos) / self.inst_size;
        if whole > 0 {
            if let Some(rk) = record_for(self, ex) {
                let nbytes = (whole * self.inst_size) as usize;
                let (chunk, rest) = input.split_at(nbytes);
                let base = origin + (pos / self.inst_size) as i64 * self.extent;
                // SAFETY: forwarded caller contract.
                unsafe { rk.scatter(chunk, dst, base, whole as usize) };
                input = rest;
                pos += whole * self.inst_size;
            } else {
                // Straight op walk, no searches, no clamping.
                while pos + self.inst_size <= hi {
                    let base = origin + (pos / self.inst_size) as i64 * self.extent;
                    let (chunk, rest) = input.split_at(self.inst_size as usize);
                    // SAFETY: forwarded caller contract.
                    unsafe { self.unpack_instance_full(chunk, dst, base, ex) };
                    input = rest;
                    pos += self.inst_size;
                }
            }
        }
        // Partial tail instance.
        if pos < hi {
            let inst = pos / self.inst_size;
            let base = origin + inst as i64 * self.extent;
            // SAFETY: forwarded caller contract.
            unsafe { self.unpack_instance_range(input, dst, base, 0, hi - inst * self.inst_size, ex) };
        }
    }

    /// Scatter one whole instance's packed bytes.
    ///
    /// # Safety
    /// As [`Self::unpack_range`].
    unsafe fn unpack_instance_full(&self, input: &[u8], dst: *mut u8, base: i64, ex: Exec) {
        let mut input = input;
        for (i, op) in self.ops.iter().enumerate() {
            let n = (self.dst_off[i + 1] - self.dst_off[i]) as usize;
            let (chunk, rest) = input.split_at(n);
            // SAFETY (both arms): in-bounds per caller contract; src and
            // dst allocations are distinct.
            match *op {
                PlanOp::Copy { src: s, .. } => unsafe {
                    kernels::copy_run(chunk.as_ptr(), dst.add((base + s) as usize), n);
                },
                PlanOp::Strided { base: b, block_len, stride, .. } => unsafe {
                    kernels::scatter_blocks(ex, chunk, dst, base + b, stride, block_len as usize);
                },
            }
            input = rest;
        }
    }

    /// Scatter one instance's packed bytes `[ilo, ihi)`.
    ///
    /// # Safety
    /// As [`Self::unpack_range`].
    unsafe fn unpack_instance_range(
        &self,
        input: &[u8],
        dst: *mut u8,
        base: i64,
        ilo: u64,
        ihi: u64,
        ex: Exec,
    ) {
        let mut i = match self.dst_off.binary_search(&ilo) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let mut input = input;
        let mut pos = ilo;
        while pos < ihi {
            let op_lo = self.dst_off[i];
            let take_hi = ihi.min(self.dst_off[i + 1]);
            let n = (take_hi - pos) as usize;
            let (chunk, rest) = input.split_at(n);
            match self.ops[i] {
                PlanOp::Copy { src: s, .. } => {
                    let to = (base + s) as usize + (pos - op_lo) as usize;
                    // SAFETY: in-bounds per caller contract; src and dst
                    // allocations are distinct.
                    unsafe { kernels::copy_run(chunk.as_ptr(), dst.add(to), n) };
                }
                PlanOp::Strided { base: b, block_len, stride, .. } => {
                    let j0 = (pos - op_lo) / block_len;
                    let first = base + b + j0 as i64 * stride;
                    // SAFETY: as above; blocks within one op are disjoint
                    // (uniform stride) and cuts are block-aligned.
                    unsafe {
                        kernels::scatter_blocks(ex, chunk, dst, first, stride, block_len as usize)
                    };
                }
            }
            input = rest;
            pos = take_hi;
            i += 1;
        }
    }
}

/// A raw pointer that may cross pool/worker-thread boundaries. Safety of
/// the writes it enables is argued at each submission site.
#[derive(Clone, Copy)]
struct SendPtr(*mut u8);
// SAFETY: sharing the address is safe; dereferences justify themselves.
unsafe impl Send for SendPtr {}
// SAFETY: as above — pool chunk closures capture it by shared reference.
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Send` wrapper, not the raw pointer field.
    fn get(self) -> *mut u8 {
        self.0
    }
}

/// The plan's record kernel, when the execution context lets it run
/// (`NONCTG_SIMD=off` disables the whole kernel layer, including this).
#[inline]
fn record_for(plan: &PackPlan, ex: Exec) -> Option<&RecordKernel> {
    if ex.tier == SimdTier::Off {
        None
    } else {
        plan.record.as_ref()
    }
}

/// Chunks to split a parallel pack into: oversplit ~4x relative to the
/// worker count so the pool's dynamic claiming load-balances, capped so
/// per-chunk overhead stays negligible. `threads <= 1` stays sequential.
fn chunk_parts(threads: usize) -> usize {
    if threads <= 1 {
        1
    } else {
        threads.saturating_mul(4).min(256)
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Worker threads used for packs above [`parallel_threshold`].
///
/// Defaults to `min(available_parallelism, 8)`; override with
/// `NONCTG_PACK_THREADS`. Resolved once per process.
pub fn pack_threads() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| {
        env_usize("NONCTG_PACK_THREADS")
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
            })
            .clamp(1, 64)
    })
}

/// Packed-byte size at which pack/unpack goes parallel (default 8 MiB;
/// override with `NONCTG_PACK_PAR_THRESHOLD`). Resolved once per process.
pub fn parallel_threshold() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| env_usize("NONCTG_PACK_PAR_THRESHOLD").unwrap_or(8 << 20).max(1))
}

struct CacheEntry {
    /// `None` caches "not plannable" so uncompilable types skip the
    /// compile attempt on every call.
    plan: Option<Arc<PackPlan>>,
    last_used: u64,
}

#[derive(Default)]
struct PlanCache {
    map: HashMap<(u64, usize), CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    compile_nanos: u64,
}

fn cache() -> &'static Mutex<PlanCache> {
    static C: OnceLock<Mutex<PlanCache>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(PlanCache::default()))
}

/// Fetch (compiling on miss) the cached plan for `count` instances of a
/// **committed** datatype. Returns `None` for uncommitted types, zero
/// counts, or unplannable types.
///
/// Entries are keyed on the *normalized* type id (see
/// [`Datatype::normalized_id`]), so canonically-equal types — however they
/// were constructed — share one compiled plan, and compilation itself runs
/// against the canonical representative (fewer, more regular ops).
///
/// The cache holds at most [`PLAN_CACHE_CAP`] entries, evicting the least
/// recently used. Compilation happens outside the cache lock, so two
/// threads missing simultaneously may both compile — the duplicate is
/// discarded, never double-inserted.
pub fn plan_for(dtype: &Datatype, count: usize) -> Option<Arc<PackPlan>> {
    if count == 0 || !dtype.is_committed() {
        return None;
    }
    let key = (dtype.normalized_id(), count);
    {
        let mut c = cache().lock().expect("plan cache poisoned");
        c.tick += 1;
        let t = c.tick;
        if let Some(e) = c.map.get_mut(&key) {
            e.last_used = t;
            let p = e.plan.clone();
            c.hits += 1;
            return p;
        }
        c.misses += 1;
    }
    let t0 = std::time::Instant::now();
    let plan = PackPlan::compile(&dtype.normalized(), count).map(Arc::new);
    let spent = t0.elapsed().as_nanos() as u64;
    let out = plan.clone();
    let mut c = cache().lock().expect("plan cache poisoned");
    c.compile_nanos += spent;
    c.tick += 1;
    let t = c.tick;
    c.map.entry(key).or_insert(CacheEntry { plan, last_used: t });
    while c.map.len() > PLAN_CACHE_CAP {
        let victim = c.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k);
        match victim {
            Some(k) => {
                c.map.remove(&k);
                c.evictions += 1;
            }
            None => break,
        }
    }
    out
}

/// Counters of the process-wide plan cache, for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Entries currently cached (bounded by [`PLAN_CACHE_CAP`]).
    pub size: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Wall-clock nanoseconds spent inside `PackPlan::compile` (including
    /// duplicate compiles that lost the insert race).
    pub compile_nanos: u64,
    /// Normalization lookups served from the per-node memo.
    pub norm_hits: u64,
    /// Normalization lookups that ran the canonicalization rewrite.
    pub norm_misses: u64,
}

impl PlanCacheStats {
    /// Counter deltas since an earlier snapshot (`size` stays absolute —
    /// it is a level, not a counter). Saturating, so a reset between the
    /// snapshots yields zeros rather than wrapping.
    pub fn delta_since(self, base: PlanCacheStats) -> PlanCacheStats {
        PlanCacheStats {
            size: self.size,
            hits: self.hits.saturating_sub(base.hits),
            misses: self.misses.saturating_sub(base.misses),
            evictions: self.evictions.saturating_sub(base.evictions),
            compile_nanos: self.compile_nanos.saturating_sub(base.compile_nanos),
            norm_hits: self.norm_hits.saturating_sub(base.norm_hits),
            norm_misses: self.norm_misses.saturating_sub(base.norm_misses),
        }
    }
}

/// Snapshot the plan-cache counters (plus the normalization memo's
/// hit/miss counters, which feed the same observability surface).
pub fn cache_stats() -> PlanCacheStats {
    let (norm_hits, norm_misses) = crate::normalize::norm_counters();
    let c = cache().lock().expect("plan cache poisoned");
    PlanCacheStats {
        size: c.map.len(),
        hits: c.hits,
        misses: c.misses,
        evictions: c.evictions,
        compile_nanos: c.compile_nanos,
        norm_hits,
        norm_misses,
    }
}

/// Zero the hit/miss/eviction/compile-time counters (and the
/// normalization counters) without touching the cached plans themselves
/// (warmed plans stay warm). For harnesses that want per-phase
/// attribution of cache activity.
pub fn reset_cache_stats() {
    crate::normalize::reset_norm_counters();
    let mut c = cache().lock().expect("plan cache poisoned");
    c.hits = 0;
    c.misses = 0;
    c.evictions = 0;
    c.compile_nanos = 0;
}

/// Snapshot the plan-cache counters (alias of [`cache_stats`], kept for
/// existing callers).
pub fn plan_cache_stats() -> PlanCacheStats {
    cache_stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{pack_into_uncompiled, unpack_from_uncompiled};

    fn f64s(n: usize) -> Vec<u8> {
        (0..n).flat_map(|i| (i as f64).to_le_bytes()).collect()
    }

    #[test]
    fn vector_compiles_to_one_strided_op() {
        let d = Datatype::vector(64, 1, 2, &Datatype::f64()).unwrap();
        let p = PackPlan::compile(&d, 1).unwrap();
        assert_eq!(p.op_count(), 1);
        assert_eq!(p.packed_len(), 64 * 8);
        assert!(p.par_safe());
    }

    #[test]
    fn dense_run_folds_to_single_memcpy() {
        let d = Datatype::contiguous(16, &Datatype::f64()).unwrap();
        let p = PackPlan::compile(&d, 100).unwrap();
        assert_eq!(p.op_count(), 1);
        assert_eq!(p.packed_len(), 16 * 8 * 100);
    }

    #[test]
    fn negative_stride_is_not_par_safe() {
        let d = Datatype::vector(3, 1, -2, &Datatype::f64()).unwrap();
        let p = PackPlan::compile(&d, 1).unwrap();
        assert!(!p.par_safe());
        let src = f64s(8);
        let mut fast = vec![0u8; 24];
        p.pack_into(&src, 40, &mut fast).unwrap();
        let mut slow = vec![0u8; 24];
        pack_into_uncompiled(&src, 40, &d, 1, &mut slow).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn indexed_blocks_merge_into_strided_op() {
        // equal-length blocks at constant pitch -> one strided op
        let d = Datatype::indexed(&[(2, 0), (2, 5), (2, 10), (2, 15)], &Datatype::f64()).unwrap();
        let p = PackPlan::compile(&d, 1).unwrap();
        assert_eq!(p.op_count(), 1);
        assert!(p.par_safe());
    }

    #[test]
    fn plan_matches_uncompiled_for_struct_instances() {
        let d = Datatype::structure(&[(1, 0, Datatype::i32()), (1, 8, Datatype::f64())]).unwrap();
        let p = PackPlan::compile(&d, 4).unwrap();
        let src: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let mut fast = vec![0u8; p.packed_len()];
        p.pack_into(&src, 0, &mut fast).unwrap();
        let mut slow = vec![0u8; p.packed_len()];
        pack_into_uncompiled(&src, 0, &d, 4, &mut slow).unwrap();
        assert_eq!(fast, slow);

        let mut ufast = vec![0u8; 64];
        p.unpack_from(&fast, &mut ufast, 0).unwrap();
        let mut uslow = vec![0u8; 64];
        unpack_from_uncompiled(&fast, &d, 4, &mut uslow, 0).unwrap();
        assert_eq!(ufast, uslow);
    }

    #[test]
    fn forced_parallel_matches_sequential() {
        let d = Datatype::vector(1000, 3, 7, &Datatype::f64()).unwrap();
        let p = PackPlan::compile(&d, 2).unwrap();
        assert!(p.par_safe());
        let n = p.packed_len();
        let src = f64s(7 * 1000 * 2 + 16);
        let mut seq = vec![0u8; n];
        p.pack_into_with(&src, 0, &mut seq, 1).unwrap();
        let mut par = vec![0u8; n];
        p.pack_into_with(&src, 0, &mut par, 5).unwrap();
        assert_eq!(seq, par);

        let mut useq = vec![0u8; src.len()];
        p.unpack_from_with(&seq, &mut useq, 0, 1).unwrap();
        let mut upar = vec![0u8; src.len()];
        p.unpack_from_with(&seq, &mut upar, 0, 5).unwrap();
        assert_eq!(useq, upar);
    }

    #[test]
    fn range_pack_unpack_matches_whole_message() {
        let d = Datatype::vector(500, 3, 7, &Datatype::f64()).unwrap();
        let p = PackPlan::compile(&d, 2).unwrap();
        let total = p.packed_len() as u64;
        let src = f64s(7 * 500 * 2 + 16);
        let mut whole = vec![0u8; total as usize];
        p.pack_into_with(&src, 0, &mut whole, 1).unwrap();

        // Walk the message in ~1000-byte chunks cut at aligned positions,
        // packing each sub-range (threaded) and unpacking it in place.
        let mut chunked = Vec::new();
        let mut recon = vec![0u8; src.len()];
        let mut pos = 0u64;
        while pos < total {
            let hi = p.align_chunk(pos + 1000);
            let mut buf = vec![0u8; (hi - pos) as usize];
            p.pack_range_into_with(&src, 0, &mut buf, pos, hi, 3).unwrap();
            p.unpack_range_from(&buf, &mut recon, 0, pos, hi).unwrap();
            chunked.extend_from_slice(&buf);
            pos = hi;
        }
        assert_eq!(chunked, whole);
        let mut expect = vec![0u8; src.len()];
        p.unpack_from(&whole, &mut expect, 0).unwrap();
        assert_eq!(recon, expect);

        // Misaligned or out-of-range bounds are rejected, not misread.
        let mut buf = vec![0u8; 64];
        assert!(matches!(
            p.pack_range_into(&src, 0, &mut buf, 1, 25),
            Err(DatatypeError::InvalidPosition { .. })
        ));
        assert!(matches!(
            p.unpack_range_from(&buf, &mut recon, 0, 24, 25),
            Err(DatatypeError::InvalidPosition { .. })
        ));
        assert!(matches!(
            p.pack_range_into(&src, 0, &mut buf, 0, total + 24),
            Err(DatatypeError::InvalidPosition { .. })
        ));
    }

    #[test]
    fn split_points_are_block_aligned_and_cover() {
        let d = Datatype::vector(97, 1, 3, &Datatype::f64()).unwrap();
        let p = PackPlan::compile(&d, 3).unwrap();
        let cuts = p.split_points(4);
        assert_eq!(cuts[0], 0);
        assert_eq!(*cuts.last().unwrap(), p.packed_len() as u64);
        for w in cuts.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &c in &cuts[1..cuts.len() - 1] {
            assert_eq!(c % 8, 0, "cut {c} not at a block boundary");
        }
    }

    #[test]
    fn out_of_bounds_and_small_dst_detected() {
        let d = Datatype::vector(8, 1, 2, &Datatype::f64()).unwrap();
        let p = PackPlan::compile(&d, 1).unwrap();
        let src = f64s(4); // too small
        let mut dst = vec![0u8; p.packed_len()];
        assert!(matches!(
            p.pack_into(&src, 0, &mut dst),
            Err(DatatypeError::OutOfBounds { .. })
        ));
        let src = f64s(16);
        let mut tiny = vec![0u8; 8];
        assert!(matches!(
            p.pack_into(&src, 0, &mut tiny),
            Err(DatatypeError::BufferTooSmall { .. })
        ));
    }

    /// Serializes tests that assert on the process-global cache counters
    /// (the reset in `stats_delta_and_compile_time` would race them).
    fn stats_lock() -> &'static std::sync::Mutex<()> {
        static L: OnceLock<std::sync::Mutex<()>> = OnceLock::new();
        L.get_or_init(|| std::sync::Mutex::new(()))
    }

    #[test]
    fn cache_is_bounded_and_hits_on_reuse() {
        let _g = stats_lock().lock().unwrap();
        let d = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap().commit();
        let before = plan_cache_stats();
        let a = plan_for(&d, 1).expect("plannable");
        let b = plan_for(&d, 1).expect("plannable");
        assert!(Arc::ptr_eq(&a, &b));
        let after = plan_cache_stats();
        assert!(after.hits > before.hits);
        // flood with distinct types; the cache must stay bounded
        for i in 0..(PLAN_CACHE_CAP + 40) {
            let t = Datatype::vector(2 + i % 7, 1, 2, &Datatype::f64())
                .unwrap()
                .commit();
            let _ = plan_for(&t, 1);
        }
        assert!(plan_cache_stats().size <= PLAN_CACHE_CAP);
    }

    #[test]
    fn uncommitted_types_bypass_cache() {
        let d = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap();
        assert!(plan_for(&d, 1).is_none());
    }

    #[test]
    fn stats_delta_and_compile_time() {
        let _g = stats_lock().lock().unwrap();
        let base = cache_stats();
        let d = Datatype::vector(6, 3, 5, &Datatype::f64()).unwrap().commit();
        let _ = plan_for(&d, 2).expect("plannable");
        let _ = plan_for(&d, 2).expect("plannable");
        let delta = cache_stats().delta_since(base);
        assert!(delta.misses >= 1);
        assert!(delta.hits >= 1);
        // the miss compiled, so compile time moved (monotonic clock may
        // round to zero on coarse timers; accept either but require the
        // counter not to wrap)
        assert!(cache_stats().compile_nanos >= base.compile_nanos);
        // a reset between snapshots saturates instead of wrapping
        let high = cache_stats();
        reset_cache_stats();
        let after = cache_stats().delta_since(high);
        assert_eq!(after.hits, 0);
        assert_eq!(after.misses, 0);
        assert_eq!(after.compile_nanos, 0);
    }
}
