//! A naive typemap interpreter used as a differential oracle.
//!
//! The MPI standard defines every derived datatype by its *type map*: the
//! ordered sequence of `(primitive, displacement)` pairs one instance
//! touches. This module re-derives that map by walking the [`Kind`] tree
//! with the most literal recursion possible — no segment coalescing, no
//! dense-run shortcuts, no compiled plans, no reuse of the cached node
//! properties. Everything the production engines compute (size, bounds,
//! extent, signature, packed bytes, unpacked layouts) is re-derived here
//! from the raw map, so the two implementations share no code paths and a
//! bug in either shows up as a disagreement.
//!
//! [`check_type`] runs the full differential battery for one `(type,
//! count, seed)` case: cached metadata vs. the map, the compiled pack-plan
//! engine and the uncompiled fallback vs. reference pack/unpack, chunk
//! sub-range pack/unpack at oracle-chosen cut points, and the external32
//! round trip. Failures come back as an [`OracleReport`] carrying a
//! reproducible description of the case.

use crate::describe::TypeMapEntry;
use crate::node::{ArrayOrder, Datatype, Kind};
use crate::signature::Signature;

/// Hard cap on oracle typemap entries per instance; the naive walk is
/// O(entries), so adversarial inputs must stay bounded.
pub const ORACLE_ENTRY_CAP: usize = 1 << 16;

/// The flat typemap of one datatype instance, as derived by the naive
/// interpreter, together with independently re-derived bounds.
#[derive(Debug, Clone)]
pub struct TypeOracle {
    entries: Vec<TypeMapEntry>,
    lb: i64,
    ub: i64,
}

/// Minimal xorshift64* generator so oracle runs are reproducible from a
/// single seed without pulling in an RNG dependency.
#[derive(Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Naive per-kind bounds: `(lb, ub)` of one instance, recomputed from the
/// constructor arguments alone (including the resized override and the
/// struct alignment-padding rule), never read from the cached node.
fn bounds(t: &Datatype) -> (i64, i64) {
    match t.kind() {
        Kind::Primitive(p) => (0, p.size() as i64),
        Kind::Contiguous { count, child } => {
            block_bounds((0..*count).map(|i| (i as i64 * extent_of(child), 1)), child)
        }
        Kind::Vector { count, blocklen, stride, child } => {
            let ext = extent_of(child);
            block_bounds((0..*count).map(|j| (j as i64 * *stride * ext, *blocklen)), child)
        }
        Kind::Hvector { count, blocklen, stride_bytes, child } => {
            block_bounds((0..*count).map(|j| (j as i64 * *stride_bytes, *blocklen)), child)
        }
        Kind::Indexed { blocks, child } => {
            let ext = extent_of(child);
            block_bounds(blocks.iter().map(|&(bl, d)| (d * ext, bl)), child)
        }
        Kind::Hindexed { blocks, child } => {
            block_bounds(blocks.iter().map(|&(bl, d)| (d, bl)), child)
        }
        Kind::IndexedBlock { blocklen, displacements, child } => {
            let ext = extent_of(child);
            block_bounds(displacements.iter().map(|&d| (d * ext, *blocklen)), child)
        }
        Kind::Struct { fields } => {
            let mut any = false;
            let (mut lb, mut ub) = (0i64, 0i64);
            let mut align = 1i64;
            for f in fields.iter() {
                if f.blocklen == 0 {
                    continue;
                }
                let (clb, cub) = bounds(&f.datatype);
                let ext = cub - clb;
                let span = (f.blocklen as i64 - 1) * ext;
                let flb = f.displacement + clb;
                let fub = f.displacement + span + cub;
                if !any {
                    (lb, ub, any) = (flb, fub, true);
                } else {
                    lb = lb.min(flb);
                    ub = ub.max(fub);
                }
                align = align.max(f.datatype.align() as i64);
            }
            if !any {
                return (0, 0);
            }
            // MPI epsilon rule: pad the extent to the natural alignment.
            let raw = (ub - lb) as u64;
            (lb, lb + (raw.div_ceil(align as u64) * align as u64) as i64)
        }
        Kind::Subarray { sizes, child, .. } => {
            let full: i64 = sizes.iter().map(|&s| s as i64).product();
            (0, full * extent_of(child))
        }
        Kind::Resized { lb, extent, child } => {
            let _ = child; // data layout is the child's; only bounds change
            (*lb, *lb + *extent as i64)
        }
    }
}

/// Bounds of a sequence of `(byte_offset, blocklen)` blocks of `child`
/// instances tiling by the child extent. Empty sequences (and all-zero
/// blocklengths) collapse to `(0, 0)`.
fn block_bounds(blocks: impl Iterator<Item = (i64, u64)>, child: &Datatype) -> (i64, i64) {
    let (clb, cub) = bounds(child);
    let ext = cub - clb;
    let mut any = false;
    let (mut lb, mut ub) = (0i64, 0i64);
    for (off, bl) in blocks {
        if bl == 0 {
            continue;
        }
        let span = (bl as i64 - 1) * ext;
        let (blo, bhi) = (off + clb, off + span + cub);
        if !any {
            (lb, ub, any) = (blo, bhi, true);
        } else {
            lb = lb.min(blo);
            ub = ub.max(bhi);
        }
    }
    if any {
        (lb, ub)
    } else {
        (0, 0)
    }
}

/// One-instance extent from the naive bounds.
fn extent_of(t: &Datatype) -> i64 {
    let (lb, ub) = bounds(t);
    ub - lb
}

/// Appends the typemap of one instance of `t` at byte `base` in
/// constructor order. Returns `false` once the entry cap is exceeded.
fn emit(t: &Datatype, base: i64, out: &mut Vec<TypeMapEntry>) -> bool {
    if out.len() > ORACLE_ENTRY_CAP {
        return false;
    }
    match t.kind() {
        Kind::Primitive(p) => {
            out.push(TypeMapEntry { primitive: *p, displacement: base });
            out.len() <= ORACLE_ENTRY_CAP
        }
        Kind::Contiguous { count, child } => {
            emit_blocks((0..*count).map(|i| (i as i64 * extent_of(child), 1)), child, base, out)
        }
        Kind::Vector { count, blocklen, stride, child } => {
            let ext = extent_of(child);
            emit_blocks(
                (0..*count).map(|j| (j as i64 * *stride * ext, *blocklen)),
                child,
                base,
                out,
            )
        }
        Kind::Hvector { count, blocklen, stride_bytes, child } => {
            emit_blocks(
                (0..*count).map(|j| (j as i64 * *stride_bytes, *blocklen)),
                child,
                base,
                out,
            )
        }
        Kind::Indexed { blocks, child } => {
            let ext = extent_of(child);
            emit_blocks(blocks.iter().map(|&(bl, d)| (d * ext, bl)), child, base, out)
        }
        Kind::Hindexed { blocks, child } => {
            emit_blocks(blocks.iter().map(|&(bl, d)| (d, bl)), child, base, out)
        }
        Kind::IndexedBlock { blocklen, displacements, child } => {
            let ext = extent_of(child);
            emit_blocks(displacements.iter().map(|&d| (d * ext, *blocklen)), child, base, out)
        }
        Kind::Struct { fields } => {
            for f in fields.iter() {
                let ext = extent_of(&f.datatype);
                for k in 0..f.blocklen {
                    if !emit(&f.datatype, base + f.displacement + k as i64 * ext, out) {
                        return false;
                    }
                }
            }
            true
        }
        Kind::Subarray { sizes, subsizes, starts, order, child } => {
            // Element strides per dimension, recomputed naively.
            let n = sizes.len();
            let mut stride = vec![1i64; n];
            match order {
                ArrayOrder::C => {
                    for d in (0..n.saturating_sub(1)).rev() {
                        stride[d] = stride[d + 1] * sizes[d + 1] as i64;
                    }
                }
                ArrayOrder::Fortran => {
                    for d in 1..n {
                        stride[d] = stride[d - 1] * sizes[d - 1] as i64;
                    }
                }
            }
            // Iterate every selected index tuple with the innermost memory
            // dimension fastest, so entries come out in ascending offset.
            let fastest_last: Vec<usize> = match order {
                ArrayOrder::C => (0..n).collect(),
                ArrayOrder::Fortran => (0..n).rev().collect(),
            };
            let ext = extent_of(child);
            let total: u64 = subsizes.iter().product();
            let mut idx = vec![0u64; n];
            for _ in 0..total {
                let mut elem = 0i64;
                for d in 0..n {
                    elem += (starts[d] + idx[d]) as i64 * stride[d];
                }
                if !emit(child, base + elem * ext, out) {
                    return false;
                }
                // Odometer increment over `fastest_last`, last entry fastest.
                for &d in fastest_last.iter().rev() {
                    idx[d] += 1;
                    if idx[d] < subsizes[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
            true
        }
        Kind::Resized { child, .. } => emit(child, base, out),
    }
}

/// Emits `(byte_offset, blocklen)` blocks of `child` instances tiling by
/// the child extent, in sequence order.
fn emit_blocks(
    blocks: impl Iterator<Item = (i64, u64)>,
    child: &Datatype,
    base: i64,
    out: &mut Vec<TypeMapEntry>,
) -> bool {
    let ext = extent_of(child);
    for (off, bl) in blocks {
        for k in 0..bl {
            if !emit(child, base + off + k as i64 * ext, out) {
                return false;
            }
        }
    }
    true
}

impl TypeOracle {
    /// Interprets the type tree into a flat typemap. Returns `None` when
    /// one instance exceeds [`ORACLE_ENTRY_CAP`] entries.
    pub fn build(t: &Datatype) -> Option<TypeOracle> {
        let mut entries = Vec::new();
        if !emit(t, 0, &mut entries) {
            return None;
        }
        let (lb, ub) = bounds(t);
        Some(TypeOracle { entries, lb, ub })
    }

    /// The typemap entries of one instance, in constructor order.
    pub fn entries(&self) -> &[TypeMapEntry] {
        &self.entries
    }

    /// Reference lower bound.
    pub fn lb(&self) -> i64 {
        self.lb
    }

    /// Reference upper bound (including resized overrides and struct
    /// alignment padding).
    pub fn ub(&self) -> i64 {
        self.ub
    }

    /// Reference extent.
    pub fn extent(&self) -> i64 {
        self.ub - self.lb
    }

    /// Reference payload size: the sum of the primitive sizes in the map.
    pub fn size(&self) -> u64 {
        self.entries.iter().map(|e| e.primitive.size() as u64).sum()
    }

    /// Reference signature: the primitive multiset of the map.
    pub fn signature(&self) -> Signature {
        let mut sig = Signature::empty();
        for e in &self.entries {
            sig = sig.plus(&Signature::of(e.primitive)).expect("oracle signature overflow");
        }
        sig
    }

    /// The byte range `[lo, hi)` relative to the instance-0 origin touched
    /// by `count` instances; `(0, 0)` for empty maps.
    pub fn touched_span(&self, count: usize) -> (i64, i64) {
        if self.entries.is_empty() || count == 0 {
            return (0, 0);
        }
        let ext = self.extent();
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for i in 0..count as i64 {
            for e in &self.entries {
                let at = i * ext + e.displacement;
                lo = lo.min(at);
                hi = hi.max(at + e.primitive.size() as i64);
            }
        }
        (lo, hi)
    }

    /// Reference pack: walks the map entry by entry, instance by instance.
    /// Returns `None` if any entry falls outside `src`.
    pub fn pack(&self, src: &[u8], origin: usize, count: usize) -> Option<Vec<u8>> {
        let ext = self.extent();
        let mut out = Vec::with_capacity(self.size() as usize * count);
        for i in 0..count as i64 {
            for e in &self.entries {
                let at = origin as i64 + i * ext + e.displacement;
                let sz = e.primitive.size();
                if at < 0 || (at as usize) + sz > src.len() {
                    return None;
                }
                out.extend_from_slice(&src[at as usize..at as usize + sz]);
            }
        }
        Some(out)
    }

    /// Reference unpack: the exact inverse walk of [`TypeOracle::pack`].
    /// Returns `None` if `packed` is short or an entry falls outside `dst`.
    pub fn unpack(&self, packed: &[u8], dst: &mut [u8], origin: usize, count: usize) -> Option<()> {
        let ext = self.extent();
        let mut pos = 0usize;
        for i in 0..count as i64 {
            for e in &self.entries {
                let at = origin as i64 + i * ext + e.displacement;
                let sz = e.primitive.size();
                if at < 0 || (at as usize) + sz > dst.len() || pos + sz > packed.len() {
                    return None;
                }
                dst[at as usize..at as usize + sz].copy_from_slice(&packed[pos..pos + sz]);
                pos += sz;
            }
        }
        Some(())
    }
}

/// A differential disagreement, carrying everything needed to reproduce
/// the failing case by hand.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// `describe()` of the offending type.
    pub case: String,
    /// Instance count of the failing operation.
    pub count: usize,
    /// Seed that produced the buffer contents and cut points.
    pub seed: u64,
    /// Which differential disagreed, and how.
    pub what: String,
}

impl std::fmt::Display for OracleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oracle mismatch [count={} seed={}]: {}\n  type: {}",
            self.count, self.seed, self.what, self.case
        )
    }
}

/// Runs the full differential battery for one case. `Ok(())` means every
/// engine agreed with the naive interpreter; `Err` carries the first
/// disagreement. Types whose map exceeds [`ORACLE_ENTRY_CAP`] are skipped
/// (reported as `Ok`): the oracle is deliberately naive and unbounded
/// inputs belong to the production engines alone.
pub fn check_type(t: &Datatype, count: usize, seed: u64) -> Result<(), Box<OracleReport>> {
    let Some(oracle) = TypeOracle::build(t) else {
        return Ok(());
    };
    let fail = |what: String| {
        Err(Box::new(OracleReport { case: t.describe(), count, seed, what }))
    };

    // --- metadata ---------------------------------------------------------
    if oracle.size() != t.size() {
        return fail(format!("size: oracle {} vs node {}", oracle.size(), t.size()));
    }
    if (oracle.lb(), oracle.ub()) != (t.lb(), t.ub()) {
        return fail(format!(
            "bounds: oracle ({}, {}) vs node ({}, {})",
            oracle.lb(),
            oracle.ub(),
            t.lb(),
            t.ub()
        ));
    }
    if oracle.extent() as u64 != t.extent() {
        return fail(format!("extent: oracle {} vs node {}", oracle.extent(), t.extent()));
    }
    if oracle.signature() != *t.signature() {
        return fail(format!(
            "signature: oracle {:?} vs node {:?}",
            oracle.signature(),
            t.signature()
        ));
    }
    let preview = t.type_map_preview(usize::MAX);
    if preview != oracle.entries() {
        return fail(format!(
            "typemap: oracle {} entries vs preview {} entries (first divergence at {:?})",
            oracle.entries().len(),
            preview.len(),
            oracle
                .entries()
                .iter()
                .zip(preview.iter())
                .position(|(a, b)| a != b)
                .or(Some(oracle.entries().len().min(preview.len())))
        ));
    }

    // --- buffers ----------------------------------------------------------
    let t = t.clone().commit();
    let (lo, hi) = oracle.touched_span(count);
    let origin = usize::try_from((-lo).max(0)).unwrap() + 8;
    let buf_len = origin + usize::try_from(hi.max(0)).unwrap() + 8;
    let mut rng = XorShift::new(seed);
    let src: Vec<u8> = (0..buf_len).map(|_| rng.next() as u8).collect();
    let packed_len = oracle.size() as usize * count;

    // --- pack: reference vs compiled vs uncompiled ------------------------
    let Some(reference) = oracle.pack(&src, origin, count) else {
        return fail("reference pack fell outside its own computed span".into());
    };
    let mut compiled = vec![0u8; packed_len];
    if let Err(e) = crate::pack::pack_into(&src, origin, &t, count, &mut compiled) {
        return fail(format!("pack_into failed: {e}"));
    }
    if compiled != reference {
        return fail(format!(
            "packed bytes: compiled engine diverges from reference at byte {:?}",
            reference.iter().zip(compiled.iter()).position(|(a, b)| a != b)
        ));
    }
    let mut uncompiled = vec![0u8; packed_len];
    if let Err(e) = crate::pack::pack_into_uncompiled(&src, origin, &t, count, &mut uncompiled) {
        return fail(format!("pack_into_uncompiled failed: {e}"));
    }
    if uncompiled != reference {
        return fail(format!(
            "packed bytes: uncompiled engine diverges from reference at byte {:?}",
            reference.iter().zip(uncompiled.iter()).position(|(a, b)| a != b)
        ));
    }

    // --- unpack: reference vs engine --------------------------------------
    let mut dst_ref = vec![0u8; buf_len];
    if oracle.unpack(&reference, &mut dst_ref, origin, count).is_none() {
        return fail("reference unpack fell outside its own computed span".into());
    }
    let mut dst_eng = vec![0u8; buf_len];
    if let Err(e) = crate::pack::unpack_from(&reference, &t, count, &mut dst_eng, origin) {
        return fail(format!("unpack_from failed: {e}"));
    }
    if dst_eng != dst_ref {
        return fail(format!(
            "unpacked layout diverges from reference at byte {:?}",
            dst_ref.iter().zip(dst_eng.iter()).position(|(a, b)| a != b)
        ));
    }

    // --- chunk sub-ranges vs reference ------------------------------------
    if let Some(plan) = crate::plan::plan_for(&t, count) {
        if plan.packed_len() != packed_len {
            return fail(format!(
                "plan packed_len {} vs reference {}",
                plan.packed_len(),
                packed_len
            ));
        }
        // Oracle-chosen cut points: a handful of seeded positions snapped
        // to legal boundaries, always ending at packed_len.
        let mut cuts = vec![0u64];
        for _ in 0..4 {
            cuts.push(plan.align_chunk(rng.next() % (packed_len as u64 + 1)));
        }
        cuts.push(packed_len as u64);
        cuts.sort_unstable();
        cuts.dedup();

        let mut piecewise = vec![0u8; packed_len];
        for w in cuts.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            if let Err(e) =
                plan.pack_range_into(&src, origin, &mut piecewise[a..b], a as u64, b as u64)
            {
                return fail(format!("pack_range_into [{a}, {b}) failed: {e}"));
            }
        }
        if piecewise != reference {
            return fail(format!(
                "piecewise pack over cuts {:?} diverges from reference at byte {:?}",
                cuts,
                reference.iter().zip(piecewise.iter()).position(|(a, b)| a != b)
            ));
        }

        let mut dst_piece = vec![0u8; buf_len];
        for w in cuts.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            if let Err(e) =
                plan.unpack_range_from(&reference[a..b], &mut dst_piece, origin, a as u64, b as u64)
            {
                return fail(format!("unpack_range_from [{a}, {b}) failed: {e}"));
            }
        }
        if dst_piece != dst_ref {
            return fail(format!(
                "piecewise unpack over cuts {:?} diverges from reference at byte {:?}",
                cuts,
                dst_ref.iter().zip(dst_piece.iter()).position(|(a, b)| a != b)
            ));
        }
    }

    // --- external32 round trip --------------------------------------------
    let ext32 = match crate::external::pack_external(&src, origin, &t, count) {
        Ok(v) => v,
        Err(e) => return fail(format!("pack_external failed: {e}")),
    };
    match crate::external::pack_external_size(&t, count) {
        Ok(n) if n == ext32.len() => {}
        Ok(n) => return fail(format!("pack_external_size {} vs actual {}", n, ext32.len())),
        Err(e) => return fail(format!("pack_external_size failed: {e}")),
    }
    let mut dst_ext = vec![0u8; buf_len];
    if let Err(e) = crate::external::unpack_external(&ext32, &t, count, &mut dst_ext, origin) {
        return fail(format!("unpack_external failed: {e}"));
    }
    if dst_ext != dst_ref {
        return fail(format!(
            "external32 round trip diverges from reference at byte {:?}",
            dst_ref.iter().zip(dst_ext.iter()).position(|(a, b)| a != b)
        ));
    }

    Ok(())
}
