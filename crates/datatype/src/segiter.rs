//! Streaming iteration over the contiguous byte segments of a datatype.
//!
//! [`SegIter`] walks a type tree with an explicit frame stack and yields
//! [`Block`]s in typemap order with *online coalescing*: byte-adjacent
//! segments are merged as they are produced. It never materializes the
//! segment list, so it handles types like `vector(10^8, 1, 2)` in O(depth)
//! memory — this is what lets the pack engine and the simulated NIC stream
//! huge derived types the way a real MPI implementation does.

use crate::node::{ArrayOrder, Block, Datatype, Kind, StructField, TypeNode};

/// One outer (non-run) dimension of a subarray being iterated.
struct OuterDim {
    start: u64,
    subsize: u64,
    /// Stride of this dimension in bytes.
    stride_bytes: i64,
}

enum Frame<'a> {
    /// `n` instances of `node`, tiled by `ext` bytes, starting at `base`.
    Run { node: &'a TypeNode, base: i64, ext: i64, n: u64, i: u64 },
    /// Block-structured kinds: visit block `idx` of `node` at `base`.
    Blocks { node: &'a TypeNode, base: i64, idx: usize },
    /// Struct fields.
    Fields { fields: &'a [StructField], base: i64, idx: usize },
    /// Subarray outer-dimension odometer.
    Sub {
        child: &'a Datatype,
        /// Byte base of this subarray instance plus the fixed inner offset.
        base: i64,
        run_elems: u64,
        outer: Vec<OuterDim>,
        idx: Vec<u64>,
        done: bool,
    },
}

/// Iterator over the coalesced contiguous segments of `count` instances of
/// a datatype, offsets relative to the origin of instance 0.
pub struct SegIter<'a> {
    stack: Vec<Frame<'a>>,
    pending: Option<Block>,
    finished: bool,
    coalesce: bool,
}

impl<'a> SegIter<'a> {
    /// Iterate the segments of `count` instances tiled by the type extent.
    pub fn new(dtype: &'a Datatype, count: u64) -> Self {
        Self::with_coalescing(dtype, count, true)
    }

    /// Like [`SegIter::new`] but without online coalescing of adjacent
    /// segments — the raw typemap runs. Used by the design-ablation bench
    /// and by tests that need the uncoalesced structure.
    pub fn new_raw(dtype: &'a Datatype, count: u64) -> Self {
        Self::with_coalescing(dtype, count, false)
    }

    fn with_coalescing(dtype: &'a Datatype, count: u64, coalesce: bool) -> Self {
        let mut it = SegIter {
            stack: Vec::with_capacity(dtype.depth() as usize + 2),
            pending: None,
            finished: false,
            coalesce,
        };
        // A dense root is emitted directly by push_run rather than queued.
        it.pending = it.push_run(&dtype.node, 0, count).filter(|b| b.len > 0);
        it
    }

    /// Queue `n` instances of `node` tiled by extent at `base`; emits
    /// directly when the run is a single dense block.
    ///
    /// Returns a block to emit, or `None` if frames were pushed instead.
    fn push_run(&mut self, node: &'a TypeNode, base: i64, n: u64) -> Option<Block> {
        if n == 0 || node.size == 0 {
            return None;
        }
        let ext = node.ub - node.lb;
        // In raw (uncoalesced) mode, composite nodes are walked structurally
        // so each typemap block yields its own segment; only genuinely flat
        // nodes may shortcut.
        let allow_dense = self.coalesce
            || matches!(
                node.kind,
                Kind::Primitive(_) | Kind::Contiguous { .. } | Kind::Resized { .. }
            );
        if let Some(b) = node.dense.filter(|_| allow_dense) {
            if n == 1 {
                return Some(Block { offset: base + b.offset, len: b.len });
            }
            if ext == b.len as i64 {
                return Some(Block { offset: base + b.offset, len: b.len * n });
            }
        }
        if n == 1 {
            self.descend(node, base)
        } else {
            self.stack.push(Frame::Run { node, base, ext, n, i: 0 });
            None
        }
    }

    /// Process a single instance of `node` at `base`: either emit its block
    /// directly or push a frame describing its children.
    fn descend(&mut self, node: &'a TypeNode, base: i64) -> Option<Block> {
        match &node.kind {
            Kind::Primitive(p) => Some(Block { offset: base, len: p.size() as u64 }),
            Kind::Contiguous { count, child } => self.push_run(&child.node, base, *count),
            Kind::Resized { child, .. } => self.descend(&child.node, base),
            Kind::Vector { .. }
            | Kind::Hvector { .. }
            | Kind::Indexed { .. }
            | Kind::Hindexed { .. }
            | Kind::IndexedBlock { .. } => {
                self.stack.push(Frame::Blocks { node, base, idx: 0 });
                None
            }
            Kind::Struct { fields } => {
                self.stack.push(Frame::Fields { fields, base, idx: 0 });
                None
            }
            Kind::Subarray { sizes, subsizes, starts, order, child } => {
                let frame = build_sub_frame(sizes, subsizes, starts, *order, child, base);
                self.stack.push(frame);
                None
            }
        }
    }

    /// The `idx`-th `(byte_offset, blocklen)` of a block-structured kind.
    fn block_of(node: &TypeNode, idx: usize) -> Option<(i64, u64)> {
        match &node.kind {
            Kind::Vector { count, blocklen, stride, child } => {
                if (idx as u64) < *count {
                    let ext = child.extent_i64();
                    Some((idx as i64 * stride * ext, *blocklen))
                } else {
                    None
                }
            }
            Kind::Hvector { count, blocklen, stride_bytes, child: _ } => {
                if (idx as u64) < *count {
                    Some((idx as i64 * stride_bytes, *blocklen))
                } else {
                    None
                }
            }
            Kind::Indexed { blocks, child } => blocks
                .get(idx)
                .map(|&(bl, d)| (d * child.extent_i64(), bl)),
            Kind::Hindexed { blocks, .. } => blocks.get(idx).map(|&(bl, d)| (d, bl)),
            Kind::IndexedBlock { blocklen, displacements, child } => displacements
                .get(idx)
                .map(|&d| (d * child.extent_i64(), *blocklen)),
            _ => None,
        }
    }

    fn block_child(node: &TypeNode) -> &Datatype {
        match &node.kind {
            Kind::Vector { child, .. }
            | Kind::Hvector { child, .. }
            | Kind::Indexed { child, .. }
            | Kind::Hindexed { child, .. }
            | Kind::IndexedBlock { child, .. } => child,
            _ => unreachable!("block_child on non-block kind"),
        }
    }

    /// Advance the machine until it produces one raw (uncoalesced) block.
    fn step(&mut self) -> Option<Block> {
        loop {
            let top = self.stack.last_mut()?;
            match top {
                Frame::Run { node, base, ext, n, i } => {
                    if i == n {
                        self.stack.pop();
                        continue;
                    }
                    let b = *base + *i as i64 * *ext;
                    let node = *node;
                    *i += 1;
                    if let Some(blk) = self.descend(node, b) {
                        return Some(blk);
                    }
                }
                Frame::Blocks { node, base, idx } => {
                    let node = *node;
                    let base = *base;
                    match Self::block_of(node, *idx) {
                        None => {
                            self.stack.pop();
                        }
                        Some((off, bl)) => {
                            *idx += 1;
                            let child = Self::block_child(node);
                            if let Some(blk) = self.push_run(&child.node, base + off, bl) {
                                return Some(blk);
                            }
                        }
                    }
                }
                Frame::Fields { fields, base, idx } => {
                    let fields: &'a [StructField] = fields;
                    if *idx == fields.len() {
                        self.stack.pop();
                        continue;
                    }
                    let f = &fields[*idx];
                    let base = *base;
                    *idx += 1;
                    if let Some(blk) = self.push_run(&f.datatype.node, base + f.displacement, f.blocklen) {
                        return Some(blk);
                    }
                }
                Frame::Sub { child, base, run_elems, outer, idx, done } => {
                    if *done {
                        self.stack.pop();
                        continue;
                    }
                    // byte offset of the current run
                    let mut off = *base;
                    for (d, i) in outer.iter().zip(idx.iter()) {
                        off += (d.start + i) as i64 * d.stride_bytes;
                    }
                    // advance the odometer (innermost outer dim fastest)
                    let mut carry = true;
                    for (d, i) in outer.iter().zip(idx.iter_mut()).rev() {
                        let (dim, i) = (d, i);
                        *i += 1;
                        if *i < dim.subsize {
                            carry = false;
                            break;
                        }
                        *i = 0;
                    }
                    if carry {
                        *done = true;
                    }
                    let child = *child;
                    let n = *run_elems;
                    if let Some(blk) = self.push_run(&child.node, off, n) {
                        return Some(blk);
                    }
                }
            }
        }
    }
}

fn build_sub_frame<'a>(
    sizes: &[u64],
    subsizes: &[u64],
    starts: &[u64],
    order: ArrayOrder,
    child: &'a Datatype,
    base: i64,
) -> Frame<'a> {
    let ndims = sizes.len();
    let ext = child.extent_i64();

    let mut stride = vec![1u64; ndims];
    match order {
        ArrayOrder::C => {
            for d in (0..ndims.saturating_sub(1)).rev() {
                stride[d] = stride[d + 1] * sizes[d + 1];
            }
        }
        ArrayOrder::Fortran => {
            for d in 1..ndims {
                stride[d] = stride[d - 1] * sizes[d - 1];
            }
        }
    }

    let dims_by_locality: Vec<usize> = match order {
        ArrayOrder::C => (0..ndims).collect(),
        ArrayOrder::Fortran => (0..ndims).rev().collect(),
    };

    // Split dims into [outer...] ++ [run dims...], where the run absorbs
    // trailing fully-selected dims plus the first partially-selected one.
    let mut run_elems = 1u64;
    let mut fixed_off_elems = 0u64;
    let mut split = 0usize; // index into dims_by_locality: dims before this are outer
    let mut still_inner = true;
    for (pos, &d) in dims_by_locality.iter().enumerate().rev() {
        if still_inner {
            if subsizes[d] == sizes[d] {
                run_elems *= sizes[d];
                continue;
            }
            run_elems *= subsizes[d];
            fixed_off_elems += starts[d] * stride[d];
            still_inner = false;
            split = pos;
        }
    }
    if still_inner {
        split = 0; // full selection: no outer dims
    }

    let outer: Vec<OuterDim> = dims_by_locality[..split]
        .iter()
        .map(|&d| OuterDim {
            start: starts[d],
            subsize: subsizes[d],
            stride_bytes: stride[d] as i64 * ext,
        })
        .collect();

    let empty = subsizes.contains(&0);
    let nidx = outer.len();
    Frame::Sub {
        child,
        base: base + fixed_off_elems as i64 * ext,
        run_elems,
        outer,
        idx: vec![0; nidx],
        done: empty,
    }
}

impl Iterator for SegIter<'_> {
    type Item = Block;

    fn next(&mut self) -> Option<Block> {
        if self.finished {
            return None;
        }
        loop {
            match self.step() {
                Some(b) if b.len == 0 => continue,
                Some(b) => match &mut self.pending {
                    Some(p) if self.coalesce && p.offset + p.len as i64 == b.offset => {
                        p.len += b.len;
                    }
                    Some(p) => {
                        let out = *p;
                        *p = b;
                        return Some(out);
                    }
                    None => {
                        self.pending = Some(b);
                    }
                },
                None => {
                    self.finished = true;
                    return self.pending.take();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segs(d: &Datatype, count: u64) -> Vec<(i64, u64)> {
        SegIter::new(d, count).map(|b| (b.offset, b.len)).collect()
    }

    #[test]
    fn primitive_single_segment() {
        assert_eq!(segs(&Datatype::f64(), 1), vec![(0, 8)]);
        assert_eq!(segs(&Datatype::f64(), 5), vec![(0, 40)]);
    }

    #[test]
    fn vector_stride_two() {
        let d = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap();
        assert_eq!(segs(&d, 1), vec![(0, 8), (16, 8), (32, 8), (48, 8)]);
    }

    #[test]
    fn vector_contiguous_collapses() {
        let d = Datatype::vector(4, 3, 3, &Datatype::f64()).unwrap();
        assert_eq!(segs(&d, 1), vec![(0, 96)]);
    }

    #[test]
    fn vector_blocklen_coalesces_inside_block() {
        let d = Datatype::vector(3, 2, 4, &Datatype::f64()).unwrap();
        assert_eq!(segs(&d, 1), vec![(0, 16), (32, 16), (64, 16)]);
    }

    #[test]
    fn multi_instance_tiling() {
        let d = Datatype::vector(2, 1, 2, &Datatype::f64()).unwrap();
        // extent = 16 + 8 = 24; instance 1 starts at 24. The segment at 16
        // (len 8) abuts instance 1's first segment at 24, so they coalesce.
        assert_eq!(segs(&d, 2), vec![(0, 8), (16, 16), (40, 8)]);
    }

    #[test]
    fn indexed_segments_and_coalescing() {
        let d = Datatype::indexed(&[(2, 0), (3, 2), (1, 8)], &Datatype::i32()).unwrap();
        // blocks at 0 (8B) and 8 (12B) are adjacent -> coalesce; 32 (4B)
        assert_eq!(segs(&d, 1), vec![(0, 20), (32, 4)]);
    }

    #[test]
    fn hindexed_byte_displacements() {
        let d = Datatype::hindexed(&[(1, 3), (1, 11)], &Datatype::i32()).unwrap();
        assert_eq!(segs(&d, 1), vec![(3, 4), (11, 4)]);
    }

    #[test]
    fn struct_fields_in_order() {
        let d = Datatype::structure(&[
            (1, 0, Datatype::i32()),
            (2, 8, Datatype::f64()),
        ])
        .unwrap();
        assert_eq!(segs(&d, 1), vec![(0, 4), (8, 16)]);
    }

    #[test]
    fn subarray_2d_rows() {
        // 3x4 f64 array, select 3x2 starting at column 1 (C order).
        let d = Datatype::subarray(&[3, 4], &[3, 2], &[0, 1], ArrayOrder::C, &Datatype::f64())
            .unwrap();
        assert_eq!(segs(&d, 1), vec![(8, 16), (40, 16), (72, 16)]);
    }

    #[test]
    fn subarray_full_rows_merge() {
        // select full rows 1..3 of a 4x5 i32 array -> one segment
        let d = Datatype::subarray(&[4, 5], &[2, 5], &[1, 0], ArrayOrder::C, &Datatype::i32())
            .unwrap();
        assert_eq!(segs(&d, 1), vec![(20, 40)]);
    }

    #[test]
    fn subarray_fortran_columns() {
        // Fortran 4x3: select rows 1..3 of column 2 -> contiguous in memory
        let d = Datatype::subarray(&[4, 3], &[2, 1], &[1, 2], ArrayOrder::Fortran, &Datatype::f64())
            .unwrap();
        assert_eq!(segs(&d, 1), vec![((2 * 4 + 1) * 8, 16)]);
    }

    #[test]
    fn subarray_3d() {
        // 2x3x4 f64; select [2,1,2] at start [0,1,1], C order.
        let d = Datatype::subarray(&[2, 3, 4], &[2, 1, 2], &[0, 1, 1], ArrayOrder::C, &Datatype::f64())
            .unwrap();
        // plane stride 12 elems, row stride 4; runs at (0,1,1)=5 and (1,1,1)=17
        assert_eq!(segs(&d, 1), vec![(5 * 8, 16), (17 * 8, 16)]);
    }

    #[test]
    fn nested_vector_of_indexed() {
        let inner = Datatype::indexed(&[(1, 0), (1, 2)], &Datatype::i32()).unwrap();
        // inner extent: 3 i32 = 12 bytes; hvector 2 blocks of 1 inner, 32B apart
        let outer = Datatype::hvector(2, 1, 32, &inner).unwrap();
        assert_eq!(segs(&outer, 1), vec![(0, 4), (8, 4), (32, 4), (40, 4)]);
    }

    #[test]
    fn resized_does_not_move_data_but_tiles_differently() {
        let r = Datatype::resized(&Datatype::i32(), 0, 12).unwrap();
        assert_eq!(segs(&r, 3), vec![(0, 4), (12, 4), (24, 4)]);
    }

    #[test]
    fn empty_types_yield_nothing() {
        let d = Datatype::vector(0, 1, 2, &Datatype::f64()).unwrap();
        assert_eq!(segs(&d, 1), vec![]);
        let d2 = Datatype::contiguous(0, &Datatype::f64()).unwrap();
        assert_eq!(segs(&d2, 4), vec![]);
        let d3 = Datatype::subarray(&[4, 4], &[0, 2], &[0, 0], ArrayOrder::C, &Datatype::f64())
            .unwrap();
        assert_eq!(segs(&d3, 1), vec![]);
    }

    #[test]
    fn zero_blocklen_blocks_skipped() {
        let d = Datatype::indexed(&[(0, 0), (2, 4), (0, 9)], &Datatype::i32()).unwrap();
        assert_eq!(segs(&d, 1), vec![(16, 8)]);
    }

    #[test]
    fn segment_count_matches_hint_for_regular_types() {
        for (count, bl, stride) in [(10usize, 1usize, 2i64), (7, 3, 5), (4, 2, 2), (1, 1, 1)] {
            let d = Datatype::vector(count, bl, stride, &Datatype::f64()).unwrap();
            let n = SegIter::new(&d, 1).count() as u64;
            assert_eq!(n, d.seg_count_hint(), "vector({count},{bl},{stride})");
        }
    }

    #[test]
    fn raw_iteration_skips_coalescing() {
        let d = Datatype::indexed(&[(2, 0), (3, 2)], &Datatype::i32()).unwrap();
        // Coalesced: one dense run. Raw: the two blocks separately.
        assert_eq!(segs(&d, 1), vec![(0, 20)]);
        let raw: Vec<(i64, u64)> = SegIter::new_raw(&d, 1).map(|b| (b.offset, b.len)).collect();
        assert_eq!(raw, vec![(0, 8), (8, 12)]);
        // Same bytes either way.
        let total: u64 = raw.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, d.size());
    }

    #[test]
    fn total_bytes_equal_size() {
        let cases: Vec<Datatype> = vec![
            Datatype::vector(13, 3, 7, &Datatype::f64()).unwrap(),
            Datatype::indexed(&[(2, 1), (5, 10), (1, 30)], &Datatype::i32()).unwrap(),
            Datatype::subarray(&[5, 6, 7], &[2, 3, 4], &[1, 2, 3], ArrayOrder::C, &Datatype::f64()).unwrap(),
            Datatype::structure(&[(3, 4, Datatype::i32()), (2, 24, Datatype::f64())]).unwrap(),
        ];
        for d in cases {
            for count in [1u64, 2, 5] {
                let total: u64 = SegIter::new(&d, count).map(|b| b.len).sum();
                assert_eq!(total, d.size() * count);
            }
        }
    }
}
