//! Canonical ("external32") packing: a fixed big-endian representation
//! independent of the host, as `MPI_Pack_external` produces for
//! heterogeneous systems and portable I/O.
//!
//! The byte *selection* is identical to [`crate::pack`]; every primitive
//! element is additionally byte-swapped into network order (big-endian).
//! Complex primitives swap per component, per the external32 spec.

use crate::error::Result;
use crate::node::Datatype;
use crate::pack::{pack, pack_size, unpack_from};
use crate::primitive::Primitive;
use crate::signature::Signature;

/// Size of the canonical external32 representation of `count` instances.
/// For the primitives supported here it equals the native packed size.
pub fn pack_external_size(dtype: &Datatype, count: usize) -> Result<usize> {
    pack_size(dtype, count)
}

/// Byte-swap unit of a primitive in external32 (complex types swap each
/// component separately).
fn swap_unit(p: Primitive) -> usize {
    match p {
        Primitive::Complex64 => 4,
        Primitive::Complex128 => 8,
        other => other.size(),
    }
}

/// The uniform swap unit of a type, if all its primitives share one.
fn uniform_swap_unit(sig: &Signature) -> Option<usize> {
    let mut unit = None;
    for p in Primitive::ALL {
        if sig.count(p) > 0 {
            let u = swap_unit(p);
            match unit {
                None => unit = Some(u),
                Some(v) if v == u => {}
                Some(_) => return None,
            }
        }
    }
    unit.or(Some(1))
}

fn swap_in_place(buf: &mut [u8], unit: usize) {
    if unit <= 1 {
        return;
    }
    debug_assert_eq!(buf.len() % unit, 0);
    for chunk in buf.chunks_exact_mut(unit) {
        chunk.reverse();
    }
}

/// Swap a packed buffer element-by-element according to the typemap order
/// of `count` instances of `dtype`.
fn swap_packed(packed: &mut [u8], dtype: &Datatype, count: usize) {
    if let Some(unit) = uniform_swap_unit(dtype.signature()) {
        swap_in_place(packed, unit);
        return;
    }
    // Mixed primitives (structs): walk the typemap of one instance and
    // apply it per instance. The packed layout is typemap order.
    let map = dtype.type_map_preview(usize::MAX);
    let per_instance = dtype.size() as usize;
    for i in 0..count {
        let base = i * per_instance;
        let mut off = base;
        for entry in &map {
            let sz = entry.primitive.size();
            swap_in_place(&mut packed[off..off + sz], swap_unit(entry.primitive));
            off += sz;
        }
        debug_assert_eq!(off - base, per_instance);
    }
}

/// Pack to the canonical big-endian representation
/// (`MPI_Pack_external("external32", ...)`).
pub fn pack_external(src: &[u8], origin: usize, dtype: &Datatype, count: usize) -> Result<Vec<u8>> {
    let mut packed = pack(src, origin, dtype, count)?;
    if cfg!(target_endian = "little") {
        swap_packed(&mut packed, dtype, count);
    }
    Ok(packed)
}

/// Unpack from the canonical representation (`MPI_Unpack_external`).
pub fn unpack_external(
    packed: &[u8],
    dtype: &Datatype,
    count: usize,
    dst: &mut [u8],
    origin: usize,
) -> Result<usize> {
    if cfg!(target_endian = "little") {
        let mut native = packed.to_vec();
        swap_packed(&mut native, dtype, count);
        unpack_from(&native, dtype, count, dst, origin)
    } else {
        unpack_from(packed, dtype, count, dst, origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::as_bytes;

    #[test]
    fn f64_external_is_big_endian() {
        let v = [1.0f64, -2.5];
        let d = Datatype::contiguous(2, &Datatype::f64()).unwrap();
        let ext = pack_external(as_bytes(&v), 0, &d, 1).unwrap();
        assert_eq!(&ext[0..8], &1.0f64.to_be_bytes());
        assert_eq!(&ext[8..16], &(-2.5f64).to_be_bytes());
    }

    #[test]
    fn external_roundtrip_strided() {
        let v: Vec<f64> = (0..16).map(|i| i as f64 * 1.5).collect();
        let d = Datatype::vector(8, 1, 2, &Datatype::f64()).unwrap().commit();
        let ext = pack_external(as_bytes(&v), 0, &d, 1).unwrap();
        let mut back = vec![0u8; 16 * 8];
        unpack_external(&ext, &d, 1, &mut back, 0).unwrap();
        for i in (0..16).step_by(2) {
            assert_eq!(&back[i * 8..i * 8 + 8], &as_bytes(&v)[i * 8..i * 8 + 8]);
        }
    }

    #[test]
    fn mixed_struct_swaps_each_field_correctly() {
        // {i32; f64} — different swap units, exercises the typemap path.
        let d = Datatype::structure(&[(1, 0, Datatype::i32()), (1, 8, Datatype::f64())])
            .unwrap()
            .commit();
        let mut src = vec![0u8; 32];
        src[0..4].copy_from_slice(&0x0102_0304i32.to_le_bytes());
        src[8..16].copy_from_slice(&3.25f64.to_le_bytes());
        src[16..20].copy_from_slice(&0x0506_0708i32.to_le_bytes());
        src[24..32].copy_from_slice(&(-7.5f64).to_le_bytes());
        let ext = pack_external(&src, 0, &d, 2).unwrap();
        assert_eq!(&ext[0..4], &0x0102_0304i32.to_be_bytes());
        assert_eq!(&ext[4..12], &3.25f64.to_be_bytes());
        assert_eq!(&ext[12..16], &0x0506_0708i32.to_be_bytes());
        assert_eq!(&ext[16..24], &(-7.5f64).to_be_bytes());

        let mut back = vec![0u8; 32];
        unpack_external(&ext, &d, 2, &mut back, 0).unwrap();
        assert_eq!(back[0..4], src[0..4]);
        assert_eq!(back[8..16], src[8..16]);
        assert_eq!(back[16..20], src[16..20]);
        assert_eq!(back[24..32], src[24..32]);
    }

    #[test]
    fn complex_swaps_per_component() {
        let d = Datatype::complex128();
        let mut src = vec![0u8; 16];
        src[0..8].copy_from_slice(&1.0f64.to_le_bytes());
        src[8..16].copy_from_slice(&2.0f64.to_le_bytes());
        let ext = pack_external(&src, 0, &d, 1).unwrap();
        assert_eq!(&ext[0..8], &1.0f64.to_be_bytes());
        assert_eq!(&ext[8..16], &2.0f64.to_be_bytes());
    }

    #[test]
    fn bytes_pass_through_unswapped() {
        let src: Vec<u8> = (0..32).collect();
        let d = Datatype::contiguous(32, &Datatype::byte()).unwrap();
        let ext = pack_external(&src, 0, &d, 1).unwrap();
        assert_eq!(ext, src);
    }

    #[test]
    fn external_size_matches_native() {
        let d = Datatype::vector(10, 3, 5, &Datatype::i32()).unwrap();
        assert_eq!(pack_external_size(&d, 4).unwrap(), crate::pack_size(&d, 4).unwrap());
    }
}
