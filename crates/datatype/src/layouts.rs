//! ddtbench application layouts — the four access patterns the DDT
//! literature actually benchmarks (Schneider/Gerstenberger/Hoefler's
//! ddtbench, revisited by Adefemi 2025 and measured against the
//! Hunold/Carpen-Amarie/Träff performance guidelines).
//!
//! Unlike the paper's single synthetic stride pattern, these layouts are
//! shaped like real application exchanges:
//!
//! * [`lammps_exchange`] — LAMMPS atom exchange: indexed blocks of
//!   **mixed-size** per-atom records (small position records interleaved
//!   with occasional large per-atom payloads), the canonical
//!   high-variance region-length distribution.
//! * [`milc_su3_zdown`] — MILC su3 zdown: a 4-D lattice of 3×3 complex
//!   matrix structs, face-selected along the z axis. Few large regions.
//! * [`nas_face`] — NAS MG/LU face exchange: a 3-D subarray face with
//!   large strides. Many equal mid-size regions.
//! * [`wrf_halo`] — WRF halo: a 4-D `f32` halo built from **nested
//!   vectors** (x-runs × y × z × variable). Very many tiny regions —
//!   region counts routinely exceed the iovec descriptor cap.
//!
//! Every builder returns a committed type with lower bound 0, so a
//! source buffer of `extent()` bytes at origin 0 covers it. The
//! [`region_lengths`]/[`region_histogram`] helpers expose the flattened
//! per-instance region structure for cost-model work and for the
//! MODEL.md tables.

use crate::error::Result;
use crate::node::Datatype;
use crate::plan;

/// Elements per small LAMMPS record (a position: 3 doubles = 24 B).
pub const LAMMPS_SMALL_ELEMS: usize = 3;
/// Elements per large LAMMPS record (accumulated per-atom payload,
/// 512 doubles = 4 KiB).
pub const LAMMPS_BIG_ELEMS: usize = 512;
/// Every `LAMMPS_BIG_PERIOD`-th atom carries the large record.
pub const LAMMPS_BIG_PERIOD: usize = 64;

/// The `(blocklen, element displacement)` pairs of a LAMMPS exchange of
/// `natoms` atoms: atom `i` contributes [`LAMMPS_BIG_ELEMS`] doubles when
/// `i % LAMMPS_BIG_PERIOD == 0`, else [`LAMMPS_SMALL_ELEMS`], with a
/// one-element gap after every record so no two regions coalesce.
pub fn lammps_blocks(natoms: usize) -> Vec<(usize, i64)> {
    let mut blocks = Vec::with_capacity(natoms);
    let mut disp: i64 = 0;
    for i in 0..natoms {
        let len = if i % LAMMPS_BIG_PERIOD == 0 { LAMMPS_BIG_ELEMS } else { LAMMPS_SMALL_ELEMS };
        blocks.push((len, disp));
        disp += len as i64 + 1; // skipped ghost flag keeps regions apart
    }
    blocks
}

/// LAMMPS atom exchange: an indexed type over `f64` selecting the
/// mixed-size per-atom records of [`lammps_blocks`].
pub fn lammps_exchange(natoms: usize) -> Result<Datatype> {
    Ok(Datatype::indexed(&lammps_blocks(natoms), &Datatype::f64())?.commit())
}

/// One su3 lattice site: a 3×3 complex-double matrix struct (144 B).
pub fn milc_su3_site() -> Result<Datatype> {
    let complex = Datatype::contiguous(2, &Datatype::f64())?;
    let row = Datatype::contiguous(3, &complex)?;
    Datatype::structure(&[(3, 0, row)])
}

/// MILC su3 zdown face: the `z == 0` hyperplane of a C-order
/// `[nt][nz][ny][nx]` lattice of su3 sites — `nt` regions of
/// `ny * nx * 144` bytes each, `nz * ny * nx * 144` bytes apart.
pub fn milc_su3_zdown(nt: usize, nz: usize, ny: usize, nx: usize) -> Result<Datatype> {
    let site = milc_su3_site()?;
    Ok(Datatype::subarray(
        &[nt, nz, ny, nx],
        &[nt, 1, ny, nx],
        &[0, 0, 0, 0],
        crate::node::ArrayOrder::C,
        &site,
    )?
    .commit())
}

/// NAS MG/LU face exchange: the `y == 0` face of a C-order
/// `[nz][ny][nx]` array of doubles — `nz` regions of `nx * 8` bytes at a
/// large stride of `ny * nx * 8` bytes.
pub fn nas_face(nz: usize, ny: usize, nx: usize) -> Result<Datatype> {
    Ok(Datatype::subarray(
        &[nz, ny, nx],
        &[nz, 1, nx],
        &[0, 0, 0],
        crate::node::ArrayOrder::C,
        &Datatype::f64(),
    )?
    .commit())
}

/// WRF halo: an x-boundary halo of width `halo` cells over a C-order
/// `[nvar][nz][ny][nx]` array of `f32`, built the way the WRF ddtbench
/// kernel builds it — nested vectors: an x-run vector per plane, an
/// hvector of planes per variable, an hvector of variables. Flattens to
/// `nvar * nz * ny` regions of `halo * 4` bytes.
pub fn wrf_halo(nvar: usize, nz: usize, ny: usize, nx: usize, halo: usize) -> Result<Datatype> {
    let f32_t = Datatype::f32();
    let plane_bytes = (nx * ny * 4) as i64;
    let runs = Datatype::vector(ny, halo, nx as i64, &f32_t)?;
    let planes = Datatype::hvector(nz, 1, plane_bytes, &runs)?;
    Ok(Datatype::hvector(nvar, 1, plane_bytes * nz as i64, &planes)?.commit())
}

/// The flattened, merge-coalesced region lengths (bytes) of `count`
/// instances of a committed type, in pack order. `None` when the type
/// has no compiled plan (zero count or uncommitted).
pub fn region_lengths(t: &Datatype, count: usize) -> Option<Vec<u64>> {
    let pl = plan::plan_for(t, count)?;
    let regions = pl.regions(usize::MAX)?;
    Some(regions.into_iter().map(|(_, len)| len).collect())
}

/// Histogram of region lengths: distinct `(length, occurrences)` pairs,
/// increasing in length. The layouts above have 1–2 distinct lengths, so
/// this is the exact region-length distribution, not a bucketing.
pub fn region_histogram(lengths: &[u64]) -> Vec<(u64, usize)> {
    let mut sorted = lengths.to_vec();
    sorted.sort_unstable();
    let mut out: Vec<(u64, usize)> = Vec::new();
    for len in sorted {
        match out.last_mut() {
            Some((l, n)) if *l == len => *n += 1,
            _ => out.push((len, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lammps_mixes_region_lengths() {
        let natoms = 3 * LAMMPS_BIG_PERIOD;
        let t = lammps_exchange(natoms).unwrap();
        let lens = region_lengths(&t, 1).unwrap();
        assert_eq!(lens.len(), natoms, "one region per atom (no coalescing)");
        let hist = region_histogram(&lens);
        assert_eq!(
            hist,
            vec![
                ((LAMMPS_SMALL_ELEMS * 8) as u64, natoms - 3),
                ((LAMMPS_BIG_ELEMS * 8) as u64, 3),
            ]
        );
        let payload: u64 = lens.iter().sum();
        assert_eq!(payload, t.size());
    }

    #[test]
    fn milc_zdown_selects_one_face() {
        let (nt, nz, ny, nx) = (4, 8, 4, 4);
        let t = milc_su3_zdown(nt, nz, ny, nx).unwrap();
        assert_eq!(t.size(), (nt * ny * nx * 144) as u64);
        assert_eq!(t.extent(), (nt * nz * ny * nx * 144) as u64);
        let lens = region_lengths(&t, 1).unwrap();
        assert_eq!(lens.len(), nt, "one contiguous region per t-slice");
        assert!(lens.iter().all(|&l| l == (ny * nx * 144) as u64));
    }

    #[test]
    fn nas_face_has_large_strides() {
        let (nz, ny, nx) = (16, 32, 8);
        let t = nas_face(nz, ny, nx).unwrap();
        assert_eq!(t.size(), (nz * nx * 8) as u64);
        let lens = region_lengths(&t, 1).unwrap();
        assert_eq!(lens, vec![(nx * 8) as u64; nz]);
    }

    #[test]
    fn wrf_halo_flattens_to_many_tiny_regions() {
        let (nvar, nz, ny, nx, halo) = (4, 8, 8, 16, 2);
        let t = wrf_halo(nvar, nz, ny, nx, halo).unwrap();
        assert_eq!(t.size(), (nvar * nz * ny * halo * 4) as u64);
        let lens = region_lengths(&t, 1).unwrap();
        assert_eq!(lens, vec![(halo * 4) as u64; nvar * nz * ny]);
    }

    #[test]
    fn layouts_have_zero_lower_bound() {
        for t in [
            lammps_exchange(130).unwrap(),
            milc_su3_zdown(2, 4, 4, 4).unwrap(),
            nas_face(4, 8, 8).unwrap(),
            wrf_halo(2, 4, 4, 8, 2).unwrap(),
        ] {
            assert_eq!(t.lb(), 0, "{}", t.describe());
            assert!(t.size() > 0 && t.extent() >= t.size());
        }
    }
}
