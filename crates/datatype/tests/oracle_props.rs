//! Differential property tests: every production engine (cached node
//! metadata, compiled pack plans, the uncompiled fallback, chunk
//! sub-ranges, external32) against the naive typemap interpreter in
//! `nonctg_datatype::oracle`, over adversarially-constructed types —
//! zero-length blocks, negative strides, LB/UB-style padding, deep mixed
//! nests — plus deterministic pins for the classes the oracle has caught.

use nonctg_datatype::plan::PLAN_CACHE_CAP;
use nonctg_datatype::{check_type, ArrayOrder, Datatype};
use proptest::prelude::*;

fn leaf() -> impl Strategy<Value = Datatype> {
    prop_oneof![
        Just(Datatype::f64()),
        Just(Datatype::f32()),
        Just(Datatype::i32()),
        Just(Datatype::i64()),
        Just(Datatype::byte()),
        Just(Datatype::complex128()),
    ]
}

/// A subarray spec that is valid by construction: per dimension
/// `(size, subsize <= size, start <= size - subsize)`.
fn arb_subarray_dims() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec((1usize..5, 0usize..5, 0usize..5), 1..3).prop_map(|dims| {
        dims.into_iter()
            .map(|(size, sub, start)| {
                let sub = sub.min(size);
                let start = if sub == size { 0 } else { start % (size - sub + 1) };
                (size, sub, start)
            })
            .collect()
    })
}

/// Adversarial datatype trees. Every constructor of the algebra appears,
/// with deliberately nasty parameters: zero counts and blocklengths,
/// negative (and overlapping) strides and displacements, struct fields
/// out of declaration order, resized LB/UB padding.
fn arb_type() -> impl Strategy<Value = Datatype> {
    leaf().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (0usize..4, inner.clone())
                .prop_map(|(c, t)| Datatype::contiguous(c, &t).unwrap()),
            (0usize..4, 0usize..4, -4i64..6, inner.clone())
                .prop_map(|(c, bl, s, t)| Datatype::vector(c, bl, s, &t).unwrap()),
            (0usize..4, 0usize..3, -40i64..64, inner.clone())
                .prop_map(|(c, bl, s, t)| Datatype::hvector(c, bl, s, &t).unwrap()),
            (proptest::collection::vec((0usize..4, -6i64..8), 0..4), inner.clone())
                .prop_map(|(blocks, t)| Datatype::indexed(&blocks, &t).unwrap()),
            (proptest::collection::vec((0usize..4, -48i64..64), 0..4), inner.clone())
                .prop_map(|(blocks, t)| Datatype::hindexed(&blocks, &t).unwrap()),
            (0usize..3, proptest::collection::vec(-6i64..8, 0..4), inner.clone())
                .prop_map(|(bl, d, t)| Datatype::indexed_block(bl, &d, &t).unwrap()),
            (proptest::collection::vec((0usize..3, -32i64..48, inner.clone()), 1..4))
                .prop_map(|fields| Datatype::structure(&fields).unwrap()),
            (arb_subarray_dims(), proptest::bool::ANY, inner.clone()).prop_map(|(dims, c_order, t)| {
                let sizes: Vec<usize> = dims.iter().map(|d| d.0).collect();
                let subsizes: Vec<usize> = dims.iter().map(|d| d.1).collect();
                let starts: Vec<usize> = dims.iter().map(|d| d.2).collect();
                let order = if c_order { ArrayOrder::C } else { ArrayOrder::Fortran };
                Datatype::subarray(&sizes, &subsizes, &starts, order, &t).unwrap()
            }),
            (inner, 0i64..24, 0u64..24).prop_map(|(t, pad_lo, pad_hi)| {
                // LB/UB-style padding: extend the envelope on both sides.
                let lb = t.lb() - pad_lo;
                let extent = (t.ub() - lb) as u64 + pad_hi;
                Datatype::resized(&t, lb, extent).unwrap()
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full battery over random adversarial types, counts, and seeds.
    #[test]
    fn engines_agree_with_oracle(t in arb_type(), count in 0usize..4, seed in 0u64..u64::MAX) {
        if let Err(r) = check_type(&t, count, seed) {
            prop_assert!(false, "{r}");
        }
    }
}

/// Zero-length blocks contribute no bytes, no bounds, and no signature.
#[test]
fn zero_length_blocks_pin() {
    let t = Datatype::indexed(&[(0, 5), (3, -2), (0, 0), (2, 4)], &Datatype::f64()).unwrap();
    check_type(&t, 3, 0xA5).unwrap();
    let empty = Datatype::vector(4, 0, 3, &Datatype::i32()).unwrap();
    assert_eq!(empty.size(), 0);
    check_type(&empty, 2, 0xA6).unwrap();
}

/// Negative strides walk blocks backwards through memory.
#[test]
fn negative_stride_pin() {
    let t = Datatype::vector(4, 2, -3, &Datatype::f64()).unwrap();
    assert!(t.lb() < 0);
    check_type(&t, 2, 0xB7).unwrap();
    let h = Datatype::hvector(3, 1, -40, &Datatype::i64()).unwrap();
    check_type(&h, 3, 0xB8).unwrap();
}

/// Resized LB/UB padding shifts the tiling origin and stretches the
/// inter-instance stride without touching the payload.
#[test]
fn lb_ub_padding_pin() {
    let body = Datatype::vector(3, 1, 2, &Datatype::f64()).unwrap();
    let t = Datatype::resized(&body, -16, 80).unwrap();
    assert_eq!((t.lb(), t.ub()), (-16, 64));
    check_type(&t, 3, 0xC9).unwrap();
}

/// Struct alignment padding (the MPI epsilon rule) must agree between the
/// oracle and the cached node bounds, including for misaligned fields.
#[test]
fn struct_epsilon_padding_pin() {
    let t = Datatype::structure(&[
        (1, 0, Datatype::i32()),
        (1, 5, Datatype::byte()),
        (2, 8, Datatype::f64()),
    ])
    .unwrap();
    assert_eq!(t.extent() % t.align() as u64, 0);
    check_type(&t, 2, 0xD1).unwrap();
}

/// Oracle-discovered bug, pinned: `type_map_preview` of a subarray whose
/// child does not tile densely used to reconstruct leaves from coalesced
/// segments, re-emitting whole children at segment offsets (duplicated
/// and spurious entries). The map of `subarray([4],[2],[1])` over
/// `vector(2,1,2,f64)` is exactly elements 1..3, i.e. two child copies at
/// byte offsets 24 and 48.
#[test]
fn subarray_sparse_child_typemap_pin() {
    let child = Datatype::vector(2, 1, 2, &Datatype::f64()).unwrap();
    let t = Datatype::subarray(&[4], &[2], &[1], ArrayOrder::C, &child).unwrap();
    let disps: Vec<i64> =
        t.type_map_preview(usize::MAX).iter().map(|e| e.displacement).collect();
    assert_eq!(disps, vec![24, 40, 48, 64]);
    check_type(&t, 2, 0xF2).unwrap();
}

/// Filling the compiled-plan LRU past its 128-entry capacity evicts the
/// oldest plans; re-checking those types recompiles them, and both the
/// cached and the recompiled plan must agree with the oracle.
#[test]
fn plan_cache_eviction_boundary() {
    let types: Vec<Datatype> = (0..PLAN_CACHE_CAP + 12)
        .map(|i| Datatype::vector(2 + i % 7, 1 + i % 3, 4, &Datatype::f64()).unwrap())
        .collect();
    for (i, t) in types.iter().enumerate() {
        check_type(t, 1 + i % 2, i as u64).unwrap();
    }
    // The first handful was evicted by now: exercise the recompile path.
    for (i, t) in types.iter().take(8).enumerate() {
        check_type(t, 2, 0xE000 + i as u64).unwrap();
    }
}
