//! Property battery for canonical normalization and the iovec region
//! descriptor: for adversarial nested trees, `normalize(t)` must pack
//! bit-identically to `t` under the naive engines, share the compiled
//! plan, and the region list must gather/scatter byte-for-byte what
//! pack/unpack produce.

use nonctg_datatype::{
    layout_eq, pack_into_uncompiled, plan_for, unpack_from_uncompiled, ArrayOrder, Datatype,
};

/// xorshift64* generator, seeded odd (the oracle module's idiom).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo).max(1) as u64) as i64
    }
}

fn leaf(rng: &mut Rng) -> Datatype {
    match rng.below(4) {
        0 => Datatype::f64(),
        1 => Datatype::i32(),
        2 => Datatype::f32(),
        _ => Datatype::i64(),
    }
}

/// Build a random (possibly degenerate) nested type of the given depth.
/// Spans are kept small so buffers stay a few KiB.
fn gen_type(rng: &mut Rng, depth: u32) -> Datatype {
    if depth == 0 {
        return leaf(rng);
    }
    let child = gen_type(rng, depth - 1);
    let pick = rng.below(9);
    let built = match pick {
        0 => Datatype::contiguous(rng.below(4) as usize + 1, &child),
        1 => {
            let blocklen = rng.below(3) as usize + 1;
            // Bias toward strides that trigger rewrites: == blocklen
            // (dense) and small irregulars, including negative.
            let stride = match rng.below(4) {
                0 => blocklen as i64,
                1 => rng.range(-4, 8),
                _ => rng.range(1, 6),
            };
            Datatype::vector(rng.below(4) as usize + 1, blocklen, stride, &child)
        }
        2 => {
            let ext = child.extent() as i64;
            let sb = match rng.below(3) {
                0 => ext * rng.range(1, 4),
                _ => rng.range(-3 * ext.max(1), 4 * ext.max(1)),
            };
            Datatype::hvector(rng.below(3) as usize + 1, rng.below(3) as usize + 1, sb, &child)
        }
        3 => {
            let n = rng.below(4) as usize + 1;
            let mut blocks = Vec::with_capacity(n);
            let mut cursor = rng.range(-4, 4);
            for _ in 0..n {
                let bl = rng.below(3) as usize + 1;
                blocks.push((bl, cursor));
                // Sometimes exactly adjacent, sometimes gapped.
                cursor += bl as i64 + if rng.below(2) == 0 { 0 } else { rng.range(1, 4) };
            }
            Datatype::indexed(&blocks, &child)
        }
        4 => {
            let n = rng.below(4) as usize + 1;
            let s = rng.range(2, 7);
            let d0 = if rng.below(2) == 0 { 0 } else { rng.range(1, 5) };
            let disps: Vec<i64> = (0..n as i64).map(|k| d0 + k * s).collect();
            Datatype::indexed_block(rng.below(2) as usize + 1, &disps, &child)
        }
        5 => {
            let ext = child.extent() as i64;
            let n = rng.below(3) as usize + 1;
            let blocks: Vec<(usize, i64)> = (0..n)
                .map(|k| {
                    let bl = rng.below(2) as usize + 1;
                    (bl, k as i64 * (ext.max(1) * rng.range(1, 4)) + rng.range(0, 3))
                })
                .collect();
            Datatype::hindexed(&blocks, &child)
        }
        6 => {
            let nfields = rng.below(3) as usize + 1;
            let mut disp = 0i64;
            let fields: Vec<(usize, i64, Datatype)> = (0..nfields)
                .map(|_| {
                    let f = (rng.below(2) as usize + 1, disp, gen_type(rng, depth - 1));
                    disp += f.2.extent() as i64 * f.0 as i64 + rng.range(0, 9);
                    f
                })
                .collect();
            Datatype::structure(&fields)
        }
        7 => {
            let s0 = rng.below(3) as usize + 2;
            let s1 = rng.below(3) as usize + 2;
            let n0 = rng.below(s0 as u64) as usize + 1;
            let n1 = rng.below(s1 as u64) as usize + 1;
            let st0 = rng.below((s0 - n0) as u64 + 1) as usize;
            let st1 = rng.below((s1 - n1) as u64 + 1) as usize;
            let order = if rng.below(2) == 0 { ArrayOrder::C } else { ArrayOrder::Fortran };
            Datatype::subarray(&[s0, s1], &[n0, n1], &[st0, st1], order, &child)
        }
        _ => {
            let grow = rng.below(16);
            Datatype::resized(&child, child.lb() - rng.range(0, 9), child.extent() + grow)
        }
    };
    built.unwrap_or(child)
}

/// Source buffer with distinct bytes, sized so `count` instances fit at
/// `origin`; returns `(buf, origin)`.
fn arena(t: &Datatype, count: usize) -> (Vec<u8>, usize) {
    let origin = (-t.true_lb()).max(0) as usize;
    let hi = t.true_ub().max(1) + (count as i64 - 1) * t.extent() as i64;
    let len = origin + hi.max(1) as usize + 8;
    let buf: Vec<u8> = (0..len).map(|i| (i % 251) as u8 ^ (i / 251) as u8).collect();
    (buf, origin)
}

#[test]
fn normalize_preserves_metadata_and_layout() {
    let mut rng = Rng::new(0x5eed_0001);
    for case in 0..400 {
        let t = gen_type(&mut rng, 1 + (case % 3) as u32);
        let n = t.normalized();
        assert_eq!(n.size(), t.size(), "size mismatch case {case}");
        assert_eq!(n.lb(), t.lb(), "lb mismatch case {case}");
        assert_eq!(n.ub(), t.ub(), "ub mismatch case {case}");
        assert_eq!(n.true_lb(), t.true_lb(), "true_lb mismatch case {case}");
        assert_eq!(n.true_ub(), t.true_ub(), "true_ub mismatch case {case}");
        assert!(layout_eq(&t, &n), "layout mismatch case {case}");
        // The canonical form of the canonical form is itself.
        assert!(n.is_canonical(), "canonical form not a fixpoint, case {case}");
        assert_eq!(n.normalized_id(), t.normalized_id(), "id mismatch case {case}");
    }
}

#[test]
fn normalized_packs_bit_identical_under_naive_engine() {
    let mut rng = Rng::new(0x5eed_0002);
    for case in 0..300 {
        let t = gen_type(&mut rng, 1 + (case % 3) as u32);
        if t.size() == 0 {
            continue;
        }
        let n = t.normalized();
        let count = rng.below(3) as usize + 1;
        let (src, origin) = arena(&t, count);
        let bytes = (t.size() * count as u64) as usize;
        let mut a = vec![0u8; bytes];
        let mut b = vec![0u8; bytes];
        pack_into_uncompiled(&src, origin, &t, count, &mut a).unwrap();
        pack_into_uncompiled(&src, origin, &n, count, &mut b).unwrap();
        assert_eq!(a, b, "pack divergence case {case} count {count}");

        // And unpack scatters to the same user bytes.
        let mut ua = vec![0u8; src.len()];
        let mut ub = vec![0u8; src.len()];
        unpack_from_uncompiled(&a, &t, count, &mut ua, origin).unwrap();
        unpack_from_uncompiled(&a, &n, count, &mut ub, origin).unwrap();
        assert_eq!(ua, ub, "unpack divergence case {case}");
    }
}

#[test]
fn shared_plan_packs_like_the_original_type() {
    let mut rng = Rng::new(0x5eed_0003);
    for case in 0..300 {
        let t = gen_type(&mut rng, 1 + (case % 3) as u32).commit();
        if t.size() == 0 {
            continue;
        }
        let count = rng.below(3) as usize + 1;
        let Some(plan) = plan_for(&t, count) else { continue };
        let (src, origin) = arena(&t, count);
        let bytes = (t.size() * count as u64) as usize;
        let mut slow = vec![0u8; bytes];
        pack_into_uncompiled(&src, origin, &t, count, &mut slow).unwrap();
        let mut fast = vec![0u8; bytes];
        plan.pack_into(&src, origin, &mut fast).unwrap();
        assert_eq!(fast, slow, "plan pack divergence case {case}");
    }
}

#[test]
fn iovec_regions_gather_and_scatter_byte_for_byte() {
    let mut rng = Rng::new(0x5eed_0004);
    let mut exercised = 0;
    for case in 0..300 {
        let t = gen_type(&mut rng, 1 + (case % 3) as u32).commit();
        if t.size() == 0 {
            continue;
        }
        let count = rng.below(3) as usize + 1;
        let Some(plan) = plan_for(&t, count) else { continue };
        let Some(regions) = plan.regions(1 << 12) else { continue };
        exercised += 1;
        let (src, origin) = arena(&t, count);
        let bytes = (t.size() * count as u64) as usize;
        assert_eq!(
            regions.iter().map(|&(_, l)| l).sum::<u64>() as usize,
            bytes,
            "region lengths must cover the message, case {case}"
        );
        let mut packed = vec![0u8; bytes];
        pack_into_uncompiled(&src, origin, &t, count, &mut packed).unwrap();

        // Gather by regions == pack.
        let mut gathered = Vec::with_capacity(bytes);
        for &(off, len) in &regions {
            let lo = (origin as i64 + off) as usize;
            gathered.extend_from_slice(&src[lo..lo + len as usize]);
        }
        assert_eq!(gathered, packed, "iovec gather != pack, case {case}");

        // Scatter by regions == unpack.
        let mut expect = vec![0u8; src.len()];
        unpack_from_uncompiled(&packed, &t, count, &mut expect, origin).unwrap();
        let mut scattered = vec![0u8; src.len()];
        let mut pos = 0usize;
        for &(off, len) in &regions {
            let lo = (origin as i64 + off) as usize;
            scattered[lo..lo + len as usize].copy_from_slice(&packed[pos..pos + len as usize]);
            pos += len as usize;
        }
        assert_eq!(scattered, expect, "iovec scatter != unpack, case {case}");
    }
    assert!(exercised > 100, "iovec property exercised only {exercised} cases");
}
