//! Differential property tests: the compiled pack-plan engine must be
//! byte-identical to the uncompiled reference engine — struct and
//! subarray trees included — on both the sequential and the partitioned
//! parallel path (threads forced on regardless of payload size, i.e. the
//! parallel threshold is effectively one byte).

use nonctg_datatype::{
    pack_into_uncompiled, pack_size, unpack_from_uncompiled, ArrayOrder, Datatype, PackPlan,
    Primitive,
};
use proptest::prelude::*;

/// A small random type tree (depth <= 3) with bounded extents.
fn arb_datatype() -> impl Strategy<Value = Datatype> {
    let leaf = prop_oneof![
        Just(Datatype::f64()),
        Just(Datatype::i32()),
        Just(Datatype::byte()),
        Just(Datatype::primitive(Primitive::Int16)),
        Just(Datatype::complex128()),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            // contiguous
            (1usize..5, inner.clone())
                .prop_map(|(n, c)| Datatype::contiguous(n, &c).unwrap()),
            // vector with non-negative stride >= blocklen (non-overlapping)
            (1usize..5, 1usize..4, 0i64..4, inner.clone()).prop_map(|(n, bl, extra, c)| {
                Datatype::vector(n, bl, bl as i64 + extra, &c).unwrap()
            }),
            // indexed with increasing displacements
            (proptest::collection::vec((1usize..3, 0i64..4), 1..4), inner.clone()).prop_map(
                |(blocks, c)| {
                    let mut disp = 0i64;
                    let blocks: Vec<(usize, i64)> = blocks
                        .into_iter()
                        .map(|(bl, gap)| {
                            let d = disp;
                            disp += bl as i64 + gap;
                            (bl, d)
                        })
                        .collect();
                    Datatype::indexed(&blocks, &c).unwrap()
                }
            ),
            // 2-D subarray
            (1usize..4, 1usize..4, 0usize..3, proptest::bool::ANY, inner.clone()).prop_map(
                |(rows, cols, start, fortran, c)| {
                    let sizes = [rows + start, cols + start];
                    let subsizes = [rows, cols];
                    let starts = [start, start.min(sizes[1] - subsizes[1])];
                    let order = if fortran { ArrayOrder::Fortran } else { ArrayOrder::C };
                    Datatype::subarray(&sizes, &subsizes, &starts, order, &c).unwrap()
                }
            ),
            // struct of two fields at consecutive displacements
            (1usize..3, 1usize..3, inner.clone()).prop_map(|(a, b, c)| {
                let ext = c.extent() as i64;
                Datatype::structure(&[
                    (a, 0, c.clone()),
                    (b, a as i64 * ext, c.clone()),
                ])
                .unwrap()
            }),
        ]
    })
}

/// Buffer sized to hold `count` instances with margin.
fn buffer_for(d: &Datatype, count: usize) -> usize {
    let span = d.extent() as usize * count + d.true_extent() as usize + 64;
    span.max(d.true_ub().max(0) as usize + d.extent() as usize * count + 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Compiled plans exist for every generated tree and agree with the
    /// uncompiled engine byte-for-byte, sequentially and with the
    /// parallel path forced on (equivalent to a 1-byte threshold).
    #[test]
    fn plan_pack_matches_uncompiled(d in arb_datatype(), count in 1usize..3) {
        let plan = PackPlan::compile(&d, count).expect("generated trees are plannable");
        let total = pack_size(&d, count).unwrap();
        prop_assert_eq!(plan.packed_len(), total);

        let len = buffer_for(&d, count);
        let src: Vec<u8> = (0..len).map(|i| (i % 251) as u8 + 1).collect();
        let origin = (-d.true_lb()).max(0) as usize;

        let mut reference = vec![0u8; total];
        pack_into_uncompiled(&src, origin, &d, count, &mut reference).unwrap();

        let mut seq = vec![0u8; total];
        plan.pack_into_with(&src, origin, &mut seq, 1).unwrap();
        prop_assert_eq!(&seq, &reference, "sequential plan pack diverged");

        let mut par = vec![0u8; total];
        plan.pack_into_with(&src, origin, &mut par, 4).unwrap();
        prop_assert_eq!(&par, &reference, "parallel plan pack diverged");
    }

    /// Same for unpack: scattered bytes and untouched gap bytes both
    /// match the uncompiled engine, sequentially and in parallel.
    #[test]
    fn plan_unpack_matches_uncompiled(d in arb_datatype(), count in 1usize..3) {
        let plan = PackPlan::compile(&d, count).expect("generated trees are plannable");
        let total = pack_size(&d, count).unwrap();
        let packed: Vec<u8> = (0..total).map(|i| (i % 249) as u8 + 1).collect();
        let len = buffer_for(&d, count);
        let origin = (-d.true_lb()).max(0) as usize;

        let mut reference = vec![0u8; len];
        unpack_from_uncompiled(&packed, &d, count, &mut reference, origin).unwrap();

        let mut seq = vec![0u8; len];
        plan.unpack_from_with(&packed, &mut seq, origin, 1).unwrap();
        prop_assert_eq!(&seq, &reference, "sequential plan unpack diverged");

        let mut par = vec![0u8; len];
        plan.unpack_from_with(&packed, &mut par, origin, 4).unwrap();
        prop_assert_eq!(&par, &reference, "parallel plan unpack diverged");
    }

    /// The public pack/unpack round-trips through the cached plan of a
    /// committed type: selected bytes restored, everything else untouched.
    #[test]
    fn committed_roundtrip_via_cache(d in arb_datatype(), count in 1usize..3) {
        let d = d.commit();
        let len = buffer_for(&d, count);
        let src: Vec<u8> = (0..len).map(|i| (i % 251) as u8 + 1).collect();
        let origin = (-d.true_lb()).max(0) as usize;

        let packed = nonctg_datatype::pack(&src, origin, &d, count).unwrap();
        let mut reference = vec![0u8; packed.len()];
        pack_into_uncompiled(&src, origin, &d, count, &mut reference).unwrap();
        prop_assert_eq!(&packed, &reference);

        let mut dst = vec![0u8; len];
        nonctg_datatype::unpack_from(&packed, &d, count, &mut dst, origin).unwrap();
        let mut ref_dst = vec![0u8; len];
        unpack_from_uncompiled(&packed, &d, count, &mut ref_dst, origin).unwrap();
        prop_assert_eq!(&dst, &ref_dst);
    }
}
