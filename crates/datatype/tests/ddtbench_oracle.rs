//! Differential oracle battery over the four ddtbench application
//! layouts: every pack engine (uncompiled walker, compiled plan, each
//! forced SIMD tier x streaming x thread count) must produce
//! byte-identical packed output, and unpack must round-trip, on the
//! exact access patterns the application kernels send.

use nonctg_datatype::layouts::{lammps_exchange, milc_su3_zdown, nas_face, wrf_halo};
use nonctg_datatype::{
    available_tiers, check_type, pack_into_uncompiled, plan_for, Datatype, SimdTier,
};

/// The four ddtbench layouts at sizes big enough to exercise multi-chunk
/// parallel packing but small enough to keep the battery fast.
fn layouts() -> Vec<(&'static str, Datatype)> {
    vec![
        ("lammps", lammps_exchange(192).unwrap()),
        ("milc", milc_su3_zdown(16, 8, 4, 4).unwrap()),
        ("nas", nas_face(24, 32, 32).unwrap()),
        ("wrf", wrf_halo(4, 8, 16, 32, 2).unwrap()),
    ]
}

fn patterned(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
            (x >> 32) as u8
        })
        .collect()
}

/// Random-walk oracle over each layout (the datatype crate's own
/// differential checker: tree walker vs compiled plan vs manual model).
#[test]
fn ddtbench_layouts_pass_the_type_oracle() {
    for (name, t) in layouts() {
        for (count, seed) in [(1usize, 0xdd7_1u64), (2, 0xdd7_2)] {
            check_type(&t, count, seed)
                .unwrap_or_else(|r| panic!("{name} x{count} failed the oracle: {r:?}"));
        }
    }
}

/// Every available SIMD tier, with and without streaming stores, at one
/// and several worker threads, must pack byte-identically to the plain
/// per-op scalar path and to the uncompiled tree walker.
#[test]
fn every_simd_tier_packs_ddtbench_layouts_identically() {
    for (name, t) in layouts() {
        let extent = (t.extent() as i64).max(t.lb() + t.size() as i64) as usize;
        let src = patterned(extent + 64, 0xa11ce);
        let packed_len = t.size() as usize;

        let mut walker = vec![0u8; packed_len];
        let n = pack_into_uncompiled(&src, 0, &t, 1, &mut walker).unwrap();
        assert_eq!(n, packed_len, "{name}: walker length");

        let plan = plan_for(&t, 1).unwrap_or_else(|| panic!("{name}: no plan"));
        let mut reference = vec![0u8; packed_len];
        plan.pack_into_forced(&src, 0, &mut reference, 1, SimdTier::Off, false).unwrap();
        assert_eq!(reference, walker, "{name}: plan(Off) != tree walker");

        for tier in available_tiers() {
            for stream in [false, true] {
                for threads in [1usize, 3] {
                    let mut out = vec![0xAAu8; packed_len];
                    plan.pack_into_forced(&src, 0, &mut out, threads, tier, stream).unwrap();
                    assert_eq!(
                        out, reference,
                        "{name}: pack mismatch tier={tier:?} stream={stream} threads={threads}"
                    );
                }
            }
        }
    }
}

/// Unpacking the packed bytes through every tier must scatter them back
/// to exactly the source's touched bytes (untouched gap bytes keep the
/// destination's fill value).
#[test]
fn every_simd_tier_unpacks_ddtbench_layouts_identically() {
    for (name, t) in layouts() {
        let extent = (t.extent() as i64).max(t.lb() + t.size() as i64) as usize;
        let src = patterned(extent + 64, 0x5ca77e);
        let packed_len = t.size() as usize;
        let plan = plan_for(&t, 1).unwrap_or_else(|| panic!("{name}: no plan"));
        let mut packed = vec![0u8; packed_len];
        plan.pack_into_forced(&src, 0, &mut packed, 1, SimdTier::Off, false).unwrap();

        let mut reference = vec![0u8; src.len()];
        plan.unpack_from_forced(&packed, &mut reference, 0, 1, SimdTier::Off).unwrap();

        for tier in available_tiers() {
            for threads in [1usize, 3] {
                let mut dst = vec![0u8; src.len()];
                plan.unpack_from_forced(&packed, &mut dst, 0, threads, tier).unwrap();
                assert_eq!(
                    dst, reference,
                    "{name}: unpack mismatch tier={tier:?} threads={threads}"
                );
            }
        }

        // Round trip: repacking the scattered buffer recovers the bytes.
        let mut repacked = vec![0u8; packed_len];
        plan.pack_into_forced(&reference, 0, &mut repacked, 1, SimdTier::Off, false).unwrap();
        assert_eq!(repacked, packed, "{name}: scatter/gather round trip");
    }
}
