//! Property-based tests of the datatype algebra and pack engine.

use nonctg_datatype::{
    pack, pack_size, strided_form, unpack_from, ArrayOrder, Datatype, Primitive, SegIter,
};
use proptest::prelude::*;

/// A small random type tree (depth <= 3) with bounded extents.
fn arb_datatype() -> impl Strategy<Value = Datatype> {
    let leaf = prop_oneof![
        Just(Datatype::f64()),
        Just(Datatype::i32()),
        Just(Datatype::byte()),
        Just(Datatype::primitive(Primitive::Int16)),
        Just(Datatype::complex128()),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            // contiguous
            (1usize..5, inner.clone())
                .prop_map(|(n, c)| Datatype::contiguous(n, &c).unwrap()),
            // vector with non-negative stride >= blocklen (non-overlapping)
            (1usize..5, 1usize..4, 0i64..4, inner.clone()).prop_map(|(n, bl, extra, c)| {
                Datatype::vector(n, bl, bl as i64 + extra, &c).unwrap()
            }),
            // indexed with increasing displacements
            (proptest::collection::vec((1usize..3, 0i64..4), 1..4), inner.clone()).prop_map(
                |(blocks, c)| {
                    let mut disp = 0i64;
                    let blocks: Vec<(usize, i64)> = blocks
                        .into_iter()
                        .map(|(bl, gap)| {
                            let d = disp;
                            disp += bl as i64 + gap;
                            (bl, d)
                        })
                        .collect();
                    Datatype::indexed(&blocks, &c).unwrap()
                }
            ),
            // 2-D subarray
            (1usize..4, 1usize..4, 0usize..3, proptest::bool::ANY, inner.clone()).prop_map(
                |(rows, cols, start, fortran, c)| {
                    let sizes = [rows + start, cols + start];
                    let subsizes = [rows, cols];
                    let starts = [start, start.min(sizes[1] - subsizes[1])];
                    let order = if fortran { ArrayOrder::Fortran } else { ArrayOrder::C };
                    Datatype::subarray(&sizes, &subsizes, &starts, order, &c).unwrap()
                }
            ),
            // struct of two fields at consecutive displacements
            (1usize..3, 1usize..3, inner.clone()).prop_map(|(a, b, c)| {
                let ext = c.extent() as i64;
                Datatype::structure(&[
                    (a, 0, c.clone()),
                    (b, a as i64 * ext, c.clone()),
                ])
                .unwrap()
            }),
        ]
    })
}

/// Buffer sized to hold `count` instances with margin.
fn buffer_for(d: &Datatype, count: usize) -> usize {
    let span = d.extent() as usize * count + d.true_extent() as usize + 64;
    span.max(d.true_ub().max(0) as usize + d.extent() as usize * count + 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// size <= true_extent <= extent for non-overlapping constructions,
    /// and the signature byte count equals the size.
    #[test]
    fn size_and_extent_invariants(d in arb_datatype()) {
        prop_assert!(d.size() <= d.true_extent().max(d.size()));
        prop_assert!(d.true_extent() <= d.extent() || d.extent() == 0);
        prop_assert_eq!(d.signature().total_bytes(), d.size());
        prop_assert!(d.true_lb() >= d.lb());
        prop_assert!(d.true_ub() <= d.ub());
    }

    /// The streaming iterator's total byte count equals count * size, and
    /// its segments are disjoint and within the type's true bounds.
    #[test]
    fn segments_cover_exactly_size(d in arb_datatype(), count in 1usize..4) {
        let mut total = 0u64;
        let mut prev_end = i64::MIN;
        let mut monotone = true;
        for b in SegIter::new(&d, count as u64) {
            prop_assert!(b.len > 0);
            if b.offset < prev_end {
                monotone = false;
            }
            prev_end = b.offset + b.len as i64;
            total += b.len;
            prop_assert!(b.offset >= d.true_lb());
            prop_assert!(
                b.offset + b.len as i64
                    <= d.true_ub() + (count as i64 - 1) * d.extent() as i64
            );
        }
        prop_assert_eq!(total, d.size() * count as u64);
        // Our generators build non-overlapping types in address order.
        prop_assert!(monotone, "segments emitted out of order");
    }

    /// Segments after coalescing never abut (adjacent would have merged).
    #[test]
    fn coalescing_leaves_no_adjacent_segments(d in arb_datatype(), count in 1usize..4) {
        let segs: Vec<_> = SegIter::new(&d, count as u64).collect();
        for w in segs.windows(2) {
            prop_assert!(
                w[0].offset + w[0].len as i64 != w[1].offset,
                "adjacent segments not coalesced: {:?}", w
            );
        }
    }

    /// pack followed by unpack restores exactly the selected bytes and
    /// touches nothing else.
    #[test]
    fn pack_unpack_roundtrip(d in arb_datatype(), count in 1usize..3) {
        let len = buffer_for(&d, count);
        let src: Vec<u8> = (0..len).map(|i| (i % 251) as u8 + 1).collect();
        let origin = (-d.true_lb()).max(0) as usize;

        let packed = pack(&src, origin, &d, count).unwrap();
        prop_assert_eq!(packed.len(), pack_size(&d, count).unwrap());

        let mut dst = vec![0u8; len];
        unpack_from(&packed, &d, count, &mut dst, origin).unwrap();

        // Every selected byte restored; every unselected byte still zero.
        let mut selected = vec![false; len];
        for b in SegIter::new(&d, count as u64) {
            let from = (origin as i64 + b.offset) as usize;
            selected[from..from + b.len as usize].fill(true);
        }
        for i in 0..len {
            if selected[i] {
                prop_assert_eq!(dst[i], src[i], "byte {} corrupted", i);
            } else {
                prop_assert_eq!(dst[i], 0u8, "byte {} spuriously written", i);
            }
        }
    }

    /// The strided fast path and the generic segment walk agree.
    #[test]
    fn strided_fast_path_matches_generic(
        count in 1usize..20,
        blocklen in 1usize..5,
        extra in 0i64..6,
        inst in 1usize..3,
    ) {
        let d = Datatype::vector(count, blocklen, blocklen as i64 + extra, &Datatype::f64())
            .unwrap()
            .commit();
        prop_assume!(strided_form(&d).is_some());
        let len = buffer_for(&d, inst);
        let src: Vec<u8> = (0..len).map(|i| (i * 7 % 255) as u8).collect();
        let fast = pack(&src, 0, &d, inst).unwrap();
        // Generic path: walk segments manually.
        let mut slow = Vec::with_capacity(fast.len());
        for b in SegIter::new(&d, inst as u64) {
            let from = b.offset as usize;
            slow.extend_from_slice(&src[from..from + b.len as usize]);
        }
        prop_assert_eq!(fast, slow);
    }

    /// A vector and the equivalent 2-D subarray pack identical bytes.
    #[test]
    fn vector_equals_subarray_selection(
        count in 1usize..12,
        blocklen in 1usize..4,
        extra in 1usize..4,
    ) {
        let stride = blocklen + extra;
        let v = Datatype::vector(count, blocklen, stride as i64, &Datatype::f64()).unwrap();
        let s = Datatype::subarray(
            &[count, stride],
            &[count, blocklen],
            &[0, 0],
            ArrayOrder::C,
            &Datatype::f64(),
        )
        .unwrap();
        prop_assert_eq!(v.size(), s.size());
        let len = buffer_for(&v, 1).max(buffer_for(&s, 1));
        let src: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        prop_assert_eq!(pack(&src, 0, &v, 1).unwrap(), pack(&src, 0, &s, 1).unwrap());
    }

    /// An indexed type listing each block of a vector packs identically.
    #[test]
    fn vector_equals_indexed_blocks(
        count in 1usize..10,
        blocklen in 1usize..4,
        extra in 0i64..4,
    ) {
        let stride = blocklen as i64 + extra;
        let v = Datatype::vector(count, blocklen, stride, &Datatype::i32()).unwrap();
        let blocks: Vec<(usize, i64)> =
            (0..count).map(|j| (blocklen, j as i64 * stride)).collect();
        let ix = Datatype::indexed(&blocks, &Datatype::i32()).unwrap();
        prop_assert_eq!(v.size(), ix.size());
        prop_assert_eq!(v.lb(), ix.lb());
        prop_assert_eq!(v.ub(), ix.ub());
        let len = buffer_for(&v, 1);
        let src: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
        prop_assert_eq!(pack(&src, 0, &v, 1).unwrap(), pack(&src, 0, &ix, 1).unwrap());
    }

    /// Committing never changes observable properties, and the flattened
    /// list (when present) matches the streaming iterator.
    #[test]
    fn commit_is_transparent(d in arb_datatype()) {
        let size = d.size();
        let extent = d.extent();
        let hint = d.seg_count_hint();
        let c = d.commit();
        prop_assert_eq!(c.size(), size);
        prop_assert_eq!(c.extent(), extent);
        prop_assert_eq!(c.seg_count_hint(), hint);
        if let Some(f) = c.flattened() {
            let live: Vec<_> = SegIter::new(&c, 1).collect();
            prop_assert_eq!(f.as_ref(), &live[..]);
        }
    }

    /// seg_count_hint is an upper bound on the real coalesced segment
    /// count, and exact for non-adjacent regular types.
    #[test]
    fn seg_hint_is_upper_bound(d in arb_datatype()) {
        let real = SegIter::new(&d, 1).count() as u64;
        prop_assert!(
            real <= d.seg_count_hint(),
            "real {} > hint {}", real, d.seg_count_hint()
        );
    }
}

/// Deeply nested stress: five levels of composition over a realistic
/// footprint must keep all invariants and round-trip through the packed
/// form, through external32, and through the flattened representation.
#[test]
fn deep_nesting_stress() {
    use nonctg_datatype::{layout_eq, pack_external, unpack_external};

    // struct { 2 x i32; vector(3, 2, 5) of (contiguous 2 f64) } repeated
    // in an hvector, selected by an indexed type.
    let pair = Datatype::contiguous(2, &Datatype::f64()).unwrap();
    let vec3 = Datatype::vector(3, 2, 5, &pair).unwrap();
    let st = Datatype::structure(&[(2, 0, Datatype::i32()), (1, 16, vec3)]).unwrap();
    let hv = Datatype::hvector(4, 1, 512, &st).unwrap();
    let top = Datatype::indexed(&[(1, 0), (1, 2)], &hv).unwrap().commit();

    assert!(top.depth() >= 5);
    assert_eq!(top.signature().total_bytes(), top.size());
    let total: u64 = SegIter::new(&top, 1).map(|b| b.len).sum();
    assert_eq!(total, top.size());

    // Round-trip with margin for the full extent of both indexed blocks.
    let span = top.true_ub().max(top.ub()) as usize + 64;
    let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8 + 1).collect();
    let packed = pack(&src, 0, &top, 1).unwrap();
    let mut back = vec![0u8; span];
    unpack_from(&packed, &top, 1, &mut back, 0).unwrap();
    for b in SegIter::new(&top, 1) {
        let r = b.offset as usize..(b.offset + b.len as i64) as usize;
        assert_eq!(&back[r.clone()], &src[r]);
    }

    // external32 round-trip too.
    let ext = pack_external(&src, 0, &top, 1).unwrap();
    assert_eq!(ext.len(), packed.len());
    let mut back2 = vec![0u8; span];
    unpack_external(&ext, &top, 1, &mut back2, 0).unwrap();
    assert_eq!(back, back2);

    // The committed flattened list matches the stream.
    let fresh = Datatype::indexed(&[(1, 0), (1, 2)], &Datatype::hvector(4, 1, 512,
        &Datatype::structure(&[(2, 0, Datatype::i32()), (1, 16,
            Datatype::vector(3, 2, 5, &Datatype::contiguous(2, &Datatype::f64()).unwrap()).unwrap())]).unwrap()).unwrap()).unwrap();
    assert!(layout_eq(&top, &fresh));
}
