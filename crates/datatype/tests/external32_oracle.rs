//! External32 (canonical big-endian) round trips for mixed-primitive
//! structs, cross-checked against the oracle typemap: the external buffer
//! must be exactly the reference-packed bytes with each primitive lane
//! byte-swapped per the external32 spec (complex types swap per
//! component), and unpacking must restore the original layout bit for
//! bit.

use nonctg_datatype::{
    as_bytes, pack_external, pack_external_size, unpack_external, Datatype, Primitive, TypeOracle,
};

/// External32 swap lane of a primitive: complex types swap each component.
fn swap_unit(p: Primitive) -> usize {
    match p {
        Primitive::Complex64 => 4,
        Primitive::Complex128 => 8,
        other => other.size(),
    }
}

/// Predicts the external32 buffer from the oracle typemap: reference-pack
/// with the naive interpreter, then reverse each swap lane (a no-op on
/// big-endian hosts).
fn oracle_external(t: &Datatype, src: &[u8], origin: usize, count: usize) -> Vec<u8> {
    let oracle = TypeOracle::build(t).expect("type under test exceeds oracle cap");
    let mut out = oracle.pack(src, origin, count).expect("reference pack in bounds");
    if cfg!(target_endian = "little") {
        let mut pos = 0;
        for _ in 0..count {
            for e in oracle.entries() {
                let unit = swap_unit(e.primitive);
                let sz = e.primitive.size();
                if unit > 1 {
                    for lane in out[pos..pos + sz].chunks_exact_mut(unit) {
                        lane.reverse();
                    }
                }
                pos += sz;
            }
        }
    }
    out
}

/// Round-trips `count` instances of `t` and checks the wire bytes against
/// the oracle prediction.
fn roundtrip(t: &Datatype, src: &[u8], count: usize) {
    let t = t.clone().commit();
    let ext = pack_external(src, 0, &t, count).unwrap();
    assert_eq!(ext.len(), pack_external_size(&t, count).unwrap());
    assert_eq!(ext, oracle_external(&t, src, 0, count), "external bytes vs oracle");

    let mut back = vec![0u8; src.len()];
    unpack_external(&ext, &t, count, &mut back, 0).unwrap();
    // Only typemap bytes come back; compare them through the oracle map.
    let oracle = TypeOracle::build(&t).unwrap();
    let expect = oracle.pack(src, 0, count).unwrap();
    let got = oracle.pack(&back, 0, count).unwrap();
    assert_eq!(got, expect, "round trip lost typemap bytes");
}

/// i32 + f64 struct with a gap: two different swap lanes in one instance.
#[test]
fn mixed_int_double_struct() {
    let t = Datatype::structure(&[
        (1, 0, Datatype::i32()),
        (2, 8, Datatype::f64()),
    ])
    .unwrap();
    let src: Vec<u8> = (0..4 * t.extent() as usize).map(|i| (i * 7 + 3) as u8).collect();
    roundtrip(&t, &src, 3);
}

/// Struct mixing four lane widths (1, 2, 4, 8) including a complex field,
/// whose components swap separately from its 16-byte footprint.
#[test]
fn four_lane_struct_with_complex() {
    let t = Datatype::structure(&[
        (3, 0, Datatype::byte()),
        (1, 4, Datatype::of::<i16>()),
        (1, 8, Datatype::f32()),
        (1, 16, Datatype::complex128()),
        (1, 32, Datatype::i64()),
    ])
    .unwrap();
    let src: Vec<u8> = (0..3 * t.extent() as usize).map(|i| (i * 13 + 1) as u8).collect();
    roundtrip(&t, &src, 2);

    // The complex128 field must swap as two 8-byte lanes, not one 16-byte
    // lane: check the wire bytes of the two components directly.
    let z = [1.5f64, -2.25f64];
    let c = Datatype::complex128().clone().commit();
    let wire = pack_external(as_bytes(&z), 0, &c, 1).unwrap();
    assert_eq!(&wire[..8], &1.5f64.to_be_bytes());
    assert_eq!(&wire[8..], &(-2.25f64).to_be_bytes());
}

/// Nested mixed struct under a vector: the per-instance typemap walk must
/// track displacements through the outer constructor.
#[test]
fn vector_of_mixed_structs() {
    let inner = Datatype::structure(&[
        (1, 0, Datatype::i32()),
        (1, 8, Datatype::f64()),
    ])
    .unwrap();
    let t = Datatype::vector(3, 1, 2, &inner).unwrap();
    let src: Vec<u8> = (0..2 * t.extent() as usize).map(|i| (i * 31 + 5) as u8).collect();
    roundtrip(&t, &src, 2);
}

/// A struct whose field order disagrees with its displacement order: the
/// wire layout follows typemap (declaration) order, not address order.
#[test]
fn out_of_order_fields() {
    let t = Datatype::structure(&[
        (1, 16, Datatype::f64()),
        (1, 0, Datatype::i32()),
        (1, 8, Datatype::of::<u16>()),
    ])
    .unwrap();
    let src: Vec<u8> = (0..2 * t.extent() as usize).map(|i| (i * 11 + 9) as u8).collect();
    roundtrip(&t, &src, 2);
}
