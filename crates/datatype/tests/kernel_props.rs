//! Differential property tests for the SIMD gather/scatter kernel tier:
//! every runnable tier (AVX2, SSE2, NEON, scalar, off), with streaming
//! stores both forced on and off, must be byte-identical to a naive
//! per-block oracle — across random alignments, block lengths from zero
//! to ~3 vector widths, negative strides, and misaligned heads/tails —
//! and whole compiled plans forced through each tier must produce
//! byte-identical packed buffers and unpacked destinations.
//!
//! The kernels are selected once per process in production
//! (`NONCTG_SIMD`); these tests bypass that via the `*_checked` /
//! `*_forced` hooks so one run covers every tier the host can execute.

use nonctg_datatype::{
    available_tiers, gather_checked, pack_size, scatter_checked, ArrayOrder, Datatype, PackPlan,
    SimdTier,
};
use proptest::prelude::*;

/// Naive gather oracle: one `copy_from_slice` per block.
fn naive_gather(src: &[u8], first: i64, stride: i64, bl: usize, nblocks: usize) -> Vec<u8> {
    let mut out = vec![0u8; nblocks * bl];
    for j in 0..nblocks {
        let off = (first + j as i64 * stride) as usize;
        out[j * bl..(j + 1) * bl].copy_from_slice(&src[off..off + bl]);
    }
    out
}

/// Naive scatter oracle: the dual of [`naive_gather`]; bytes of `dst`
/// outside the blocks are left untouched.
fn naive_scatter(input: &[u8], dst: &mut [u8], first: i64, stride: i64, bl: usize) {
    for (j, block) in input.chunks_exact(bl).enumerate() {
        let off = (first + j as i64 * stride) as usize;
        dst[off..off + bl].copy_from_slice(block);
    }
}

/// Valid strided-access parameters by construction: a source buffer of
/// pseudo-random bytes with a random head offset (`first`), a stride
/// that may run forward (with gap or overlap) or backward, and a block
/// length spanning 0..96 bytes (three AVX2 widths).
#[derive(Debug, Clone)]
struct StridedCase {
    src: Vec<u8>,
    first: i64,
    stride: i64,
    bl: usize,
    nblocks: usize,
}

fn arb_strided() -> impl Strategy<Value = StridedCase> {
    (
        0usize..97,     // bl: 0..=96, three vector widths
        0usize..49,     // nblocks
        -17i64..33,     // stride - bl: negative = overlap, backward runs
        0usize..32,     // head misalignment
        proptest::bool::ANY, // reverse: walk blocks backwards
        0u64..u64::MAX, // content seed
    )
        .prop_map(|(bl, nblocks, gap, head, reverse, seed)| {
            let stride_abs = (bl as i64 + gap).max(bl.max(1) as i64);
            let span = if nblocks == 0 {
                0
            } else {
                (nblocks - 1) as i64 * stride_abs + bl as i64
            };
            let (first, stride) = if reverse {
                (head as i64 + span - bl as i64, -stride_abs)
            } else {
                (head as i64, stride_abs)
            };
            let len = head + span as usize + 24; // tail slack past the last block
            let mut x = seed | 1;
            let src: Vec<u8> = (0..len)
                .map(|_| {
                    // xorshift: cheap deterministic noise.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect();
            StridedCase { src, first, stride, bl, nblocks }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every tier × {cached, streaming} gather matches the naive oracle
    /// (and therefore every other tier) byte for byte.
    #[test]
    fn gather_all_tiers_match_oracle(case in arb_strided()) {
        let StridedCase { src, first, stride, bl, nblocks } = case;
        let expect = naive_gather(&src, first, stride, bl, nblocks);
        for tier in available_tiers() {
            for stream in [false, true] {
                let got = gather_checked(tier, stream, &src, first, stride, bl, nblocks)
                    .expect("constructed case is in-bounds");
                prop_assert_eq!(
                    &got, &expect,
                    "tier {} stream {} diverged (bl={}, stride={}, first={}, n={})",
                    tier.name(), stream, bl, stride, first, nblocks
                );
            }
        }
    }

    /// Every tier's scatter matches the naive oracle, including the gap
    /// bytes it must not touch (whole-destination comparison).
    #[test]
    fn scatter_all_tiers_match_oracle(case in arb_strided()) {
        let StridedCase { src, first, stride, bl, nblocks } = case;
        prop_assume!(bl > 0);
        // Reuse the gathered bytes as scatter input; `src` doubles as
        // the pre-filled destination pattern.
        let input = naive_gather(&src, first, stride, bl, nblocks);
        let mut expect = src.clone();
        naive_scatter(&input, &mut expect, first, stride, bl);
        for tier in available_tiers() {
            let mut got = src.clone();
            prop_assert!(scatter_checked(tier, &input, &mut got, first, stride, bl));
            prop_assert_eq!(
                &got, &expect,
                "tier {} scatter diverged (bl={}, stride={}, first={}, n={})",
                tier.name(), bl, stride, first, nblocks
            );
        }
    }

    /// Out-of-bounds parameters are rejected by every tier, never
    /// executed: the checked hooks return None/false without touching
    /// memory.
    #[test]
    fn checked_hooks_reject_out_of_bounds(case in arb_strided(), overshoot in 1usize..64) {
        let StridedCase { src, first, stride, bl, nblocks } = case;
        prop_assume!(nblocks > 0 && bl > 0);
        // Truncate the buffer so the last block's tail falls outside.
        let span = first.max(first + (nblocks - 1) as i64 * stride) as usize + bl;
        let cut = span.saturating_sub(overshoot.min(bl - 1).max(1)).min(src.len());
        let short = &src[..cut];
        for tier in available_tiers() {
            prop_assert!(
                gather_checked(tier, false, short, first, stride, bl, nblocks).is_none()
            );
            let input = vec![0xCDu8; nblocks * bl];
            let mut dst = short.to_vec();
            let before = dst.clone();
            prop_assert!(!scatter_checked(tier, &input, &mut dst, first, stride, bl));
            prop_assert_eq!(&dst, &before, "rejected scatter wrote to dst");
        }
    }
}

/// A plannable type zoo for the plan-level tier equivalence test:
/// strided vectors (the NT-store targets), odd block lengths (the
/// loose-16 kernel), small structs (the pshufb record kernel), and
/// subarrays with 16-byte-multiple rows.
fn arb_plan_type() -> impl Strategy<Value = Datatype> {
    prop_oneof![
        // Strided vector over f64: bl 8 — the NT 8-byte kernel.
        (1usize..64, 1usize..5, 0i64..4).prop_map(|(n, bl, gap)| {
            Datatype::vector(n, bl, bl as i64 + gap, &Datatype::f64()).unwrap()
        }),
        // Strided vector over i32: bl 4.
        (1usize..64, 1usize..5, 0i64..4).prop_map(|(n, bl, gap)| {
            Datatype::vector(n, bl, bl as i64 + gap, &Datatype::i32()).unwrap()
        }),
        // Byte vector with odd block lengths: the loose-16 kernel.
        (1usize..48, 1usize..15, 1i64..17).prop_map(|(n, bl, gap)| {
            Datatype::vector(n, bl, bl as i64 + gap, &Datatype::byte()).unwrap()
        }),
        // The paper's interleaved struct {double, int}: record kernel.
        (1usize..5).prop_map(|pad| {
            Datatype::structure(&[
                (1, 0, Datatype::f64()),
                (1, 8, Datatype::i32()),
                (0, 12 + pad as i64, Datatype::byte()),
            ])
            .unwrap()
        }),
        // 2-D subarray with 16-byte-multiple rows: the NT 16x kernel.
        (1usize..6, 1usize..4, 0usize..2).prop_map(|(rows, cols16, start)| {
            let cols = cols16 * 16;
            Datatype::subarray(
                &[rows + start, cols + 16],
                &[rows, cols],
                &[start, 0],
                ArrayOrder::C,
                &Datatype::byte(),
            )
            .unwrap()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whole plans forced through every tier × {stream on, off} × {1, 4
    /// threads} produce byte-identical packed buffers and unpacked
    /// destinations to the `Off` tier (pure memcpy ops).
    #[test]
    fn forced_tiers_pack_and_unpack_identically(
        d in arb_plan_type(),
        count in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let plan = PackPlan::compile(&d, count).expect("zoo types are plannable");
        let total = pack_size(&d, count).unwrap();
        let origin = (-d.true_lb()).max(0) as usize;
        let len = origin + d.true_ub().max(0) as usize + d.extent() as usize * count + 64;
        let mut x = seed | 1;
        let src: Vec<u8> = (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();

        let mut reference = vec![0u8; total];
        plan.pack_into_forced(&src, origin, &mut reference, 1, SimdTier::Off, false).unwrap();
        let mut ref_dst = vec![0u8; len];
        ref_dst.copy_from_slice(&src);
        plan.unpack_from_forced(&reference, &mut ref_dst, origin, 1, SimdTier::Off).unwrap();

        for tier in available_tiers() {
            for stream in [false, true] {
                for threads in [1usize, 4] {
                    let mut packed = vec![0u8; total];
                    plan.pack_into_forced(&src, origin, &mut packed, threads, tier, stream)
                        .unwrap();
                    prop_assert_eq!(
                        &packed, &reference,
                        "pack diverged: tier {} stream {} threads {}",
                        tier.name(), stream, threads
                    );
                    let mut dst = vec![0u8; len];
                    dst.copy_from_slice(&src);
                    plan.unpack_from_forced(&packed, &mut dst, origin, threads, tier).unwrap();
                    prop_assert_eq!(
                        &dst, &ref_dst,
                        "unpack diverged: tier {} threads {}",
                        tier.name(), threads
                    );
                }
            }
        }
    }
}

/// The streaming threshold itself is environment-dependent, but forcing
/// `stream` through the hook must be equivalent at any size — pinned
/// here at one size well below any LLC so the cached path is the one
/// production would take.
#[test]
fn forced_stream_equals_cached_below_threshold() {
    let src: Vec<u8> = (0..4096).map(|i| (i % 253) as u8).collect();
    for tier in available_tiers() {
        let cached = gather_checked(tier, false, &src, 3, 24, 8, 128).unwrap();
        let streamed = gather_checked(tier, true, &src, 3, 24, 8, 128).unwrap();
        assert_eq!(cached, streamed, "tier {}", tier.name());
    }
}

/// Zero-block and zero-length edges: every tier returns an empty pack
/// without touching anything.
#[test]
fn zero_sized_cases_are_empty_on_all_tiers() {
    let src = vec![0u8; 64];
    for tier in available_tiers() {
        assert_eq!(gather_checked(tier, false, &src, 0, 8, 0, 0), Some(Vec::new()));
        assert_eq!(gather_checked(tier, false, &src, 0, 8, 4, 0), Some(Vec::new()));
        let mut dst = src.clone();
        assert!(scatter_checked(tier, &[], &mut dst, 0, 8, 4));
        assert_eq!(dst, src);
    }
}
