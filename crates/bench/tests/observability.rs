//! Observability must be free and faithful: enabling tracing/metrics may
//! not move a single virtual timestamp, runs with it disabled emit
//! byte-identical sweep CSVs, and phase attributions account for the
//! reported scheme time.

use nonctg_bench::{events_to_spans, sweep_csv};
use nonctg_report::chrome_trace_json;
use nonctg_schemes::{
    run_phase_sweep, run_scheme_phases, run_sweep, try_run_scheme, try_run_scheme_observed,
    Observe, PingPongConfig, Scheme, SweepConfig, Workload,
};
use nonctg_simnet::Platform;

fn platform() -> Platform {
    Platform::skx_impi()
}

fn pp_cfg(reps: usize) -> PingPongConfig {
    PingPongConfig { reps, flush: false, flush_bytes: 0, verify: true }
}

fn small_cfg() -> SweepConfig {
    SweepConfig {
        schemes: Scheme::ALL.to_vec(),
        min_bytes: 1 << 10,
        max_bytes: 1 << 14,
        step: 4,
        base: pp_cfg(4),
    }
}

/// The regression the whole design hangs on: a sweep run before and
/// after a fully-instrumented measurement produces byte-identical CSV —
/// observability compiled in but switched off costs nothing and leaks
/// no state between runs.
#[test]
fn sweep_csv_byte_identical_around_observed_run() {
    let p = platform();
    let cfg = small_cfg();
    let csv_before = sweep_csv(&run_sweep(&p, &cfg));

    let w = Workload::every_other(4096);
    let run = try_run_scheme_observed(&p, Scheme::PackingVector, &w, &pp_cfg(4), Observe::ALL)
        .expect("observed run failed");
    assert!(!run.events.is_empty());
    assert!(run.metrics.is_some());

    let csv_after = sweep_csv(&run_sweep(&p, &cfg));
    assert_eq!(csv_before, csv_after, "observability leaked into measurement state");
}

/// Tracing and metrics only *watch* the virtual clock; the measured
/// times of an observed run are bit-equal to the unobserved run's.
#[test]
fn observed_times_bit_equal_unobserved() {
    let p = platform();
    let w = Workload::every_other(8192);
    let cfg = pp_cfg(5);
    for scheme in Scheme::ALL {
        let plain = try_run_scheme(&p, scheme, &w, &cfg).expect("plain run");
        let observed = try_run_scheme_observed(&p, scheme, &w, &cfg, Observe::ALL)
            .expect("observed run");
        assert_eq!(plain.times, observed.result.times, "{scheme}: tracing moved the clock");
        // The windows are exactly the per-rep times.
        for (w, t) in observed.windows.iter().zip(&observed.result.times) {
            assert!(((w.1 - w.0) - t).abs() < 1e-15, "{scheme}: window/time mismatch");
        }
    }
}

/// Phase sums must reproduce the reported (outlier-rejected) mean within
/// 1% for every scheme — the acceptance bar for the attribution.
#[test]
fn phase_sums_match_reported_time_for_every_scheme() {
    let p = platform();
    let cfg = pp_cfg(5);
    for &elems in &[512usize, 8192] {
        let w = Workload::every_other(elems);
        for scheme in Scheme::ALL {
            let point = run_scheme_phases(&p, scheme, &w, &cfg).expect("phase run");
            let sum = point.phases.total();
            assert!(
                (sum - point.time).abs() <= 0.01 * point.time,
                "{scheme} @ {} bytes: phases sum {sum} vs reported {}",
                w.msg_bytes(),
                point.time
            );
            assert!(point.phases.pack >= 0.0 && point.phases.sync >= 0.0);
        }
    }
}

/// The paper-scale acceptance case: a two-rank vector-type ping-pong at
/// 2^20 elements yields a Chrome-trace JSON with per-rank tracks and a
/// phase breakdown within 1% of the reported time.
#[test]
fn vector_megabyte_pingpong_trace_and_phases() {
    let p = platform();
    let w = Workload::every_other(1 << 20);
    let cfg = pp_cfg(2);
    let run = try_run_scheme_observed(&p, Scheme::VectorType, &w, &cfg, Observe::ALL)
        .expect("observed run");

    // Per-rank tracks in the Chrome JSON.
    let spans = events_to_spans(&run.events);
    assert!(spans.iter().any(|s| s.track == 0) && spans.iter().any(|s| s.track == 1));
    let names = vec!["rank 0".to_string(), "rank 1".to_string()];
    let json = chrome_trace_json(&spans, "nonctg", &names);
    assert!(json.contains("\"tid\": 0") && json.contains("\"tid\": 1"), "missing rank tracks");
    assert!(json.contains("\"thread_name\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());

    // The sender's gather was traced as a nested stage event; the
    // receiver (which receives contiguously, per the paper's protocol)
    // shows plain recv events.
    assert!(run.events[0].iter().any(|e| e.kind.label() == "stage"));
    assert!(run.events[1].iter().any(|e| e.kind.label() == "recv"));

    // Phase attribution within 1%.
    let point = run_scheme_phases(&p, Scheme::VectorType, &w, &cfg).expect("phase run");
    assert!(
        (point.phases.total() - point.time).abs() <= 0.01 * point.time,
        "phases {:?} vs time {}",
        point.phases,
        point.time
    );
    assert!(point.phases.pack > 0.0, "vector send must show gather/pack time");

    // Metrics snapshot renders as structurally sound JSON.
    let m = run.metrics.expect("metrics");
    let mj = m.to_json();
    assert_eq!(mj.matches('{').count(), mj.matches('}').count());
    assert!(mj.contains("\"plan_cache\""));
}

/// The phases CSV carries one row per (scheme, size) point plus header.
#[test]
fn phases_csv_row_count_matches_sweep_grid() {
    let p = platform();
    let mut cfg = small_cfg();
    cfg.schemes = vec![Scheme::Reference, Scheme::VectorType, Scheme::PackingElement];
    let ps = run_phase_sweep(&p, &cfg);
    let n_sizes = cfg.sizes().len();
    assert_eq!(ps.points.len(), 3 * n_sizes);
    let csv = ps.to_csv();
    assert_eq!(csv.lines().count(), 1 + 3 * n_sizes);
    assert!(csv.lines().next().unwrap().contains("pack_s,transfer_s,sync_s,unpack_s"));
    let json = ps.to_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
