//! Trace-export round trip: a synthetic [`ObservedRun`] is converted to
//! spans, exported as Chrome-tracing JSON, then parsed back with the
//! bench crate's own JSON parser. The assertions pin what downstream
//! viewers rely on: one `X` record per trace event, `thread_name`
//! metadata for every rank, non-negative durations with timestamps
//! monotone per track, and the `seq`/`depth` pipeline annotations
//! surviving verbatim.

use nonctg_bench::events_to_spans;
use nonctg_bench::history::{parse_json, Value};
use nonctg_core::{EventKind, FaultStats, TraceEvent};
use nonctg_report::chrome_trace_json;
use nonctg_schemes::{ObservedRun, PingPongResult, Scheme};

fn ev(kind: EventKind, t_start: f64, t_end: f64, bytes: usize) -> TraceEvent {
    TraceEvent {
        kind,
        t_start,
        t_end,
        peer: Some(1),
        bytes,
        tag: Some(17),
        seq: None,
        depth: None,
    }
}

/// Two ranks of a one-rep staged ping: pack + send on rank 0 with two
/// zero-width chunk posts, recv + unpack on rank 1 with two drains.
fn synthetic_run() -> ObservedRun {
    let mut tx0 = ev(EventKind::Chunk, 1.0, 1.0, 512);
    tx0.seq = Some(0);
    tx0.depth = Some(1);
    let mut tx1 = ev(EventKind::Chunk, 1.0, 1.0, 512);
    tx1.seq = Some(1);
    tx1.depth = Some(2);
    let mut rx0 = tx0;
    rx0.peer = Some(0);
    rx0.depth = Some(2);
    let mut rx1 = tx1;
    rx1.peer = Some(0);
    rx1.depth = Some(1);

    let rank0 = vec![
        ev(EventKind::Pack, 0.0, 1.0, 1024),
        ev(EventKind::Send, 1.0, 3.0, 1024),
        tx0,
        tx1,
    ];
    let rank1 = vec![
        ev(EventKind::Recv, 0.5, 3.0, 1024),
        rx0,
        rx1,
        ev(EventKind::Unpack, 3.0, 3.5, 1024),
    ];
    ObservedRun {
        result: PingPongResult {
            scheme: Scheme::PackingVector,
            msg_bytes: 1024,
            times: vec![3.5],
            faults: FaultStats::default(),
        },
        events: vec![rank0, rank1],
        windows: vec![(0.0, 3.5)],
        metrics: None,
    }
}

/// The `X` (complete-event) records of a parsed trace document.
fn complete_events(doc: &Value) -> Vec<&Value> {
    doc.get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .collect()
}

#[test]
fn export_round_trips_counts_tracks_and_timestamps() {
    let run = synthetic_run();
    let spans = events_to_spans(&run.events);
    let names = vec!["rank 0".to_string(), "rank 1".to_string()];
    let json = chrome_trace_json(&spans, "roundtrip", &names);

    let doc = parse_json(&json).expect("export parses as JSON");
    let events = complete_events(&doc);
    let total: usize = run.events.iter().map(Vec::len).sum();
    assert_eq!(events.len(), total, "one X record per trace event");

    // thread_name metadata names every rank that has events.
    let metas: Vec<(f64, &str)> = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
        .map(|e| {
            (
                e.get("tid").and_then(Value::as_f64).unwrap(),
                e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str).unwrap(),
            )
        })
        .collect();
    assert_eq!(metas, vec![(0.0, "rank 0"), (1.0, "rank 1")]);

    // Per track: timestamps non-decreasing in emission order, durations
    // non-negative, and every record carries a bytes argument.
    for track in [0.0, 1.0] {
        let mut last = f64::NEG_INFINITY;
        let mut seen = 0usize;
        for e in &events {
            if e.get("tid").and_then(Value::as_f64) != Some(track) {
                continue;
            }
            seen += 1;
            let ts = e.get("ts").and_then(Value::as_f64).unwrap();
            let dur = e.get("dur").and_then(Value::as_f64).unwrap();
            assert!(ts >= last, "track {track}: ts went backwards ({ts} < {last})");
            assert!(dur >= 0.0, "track {track}: negative duration");
            assert!(e.get("args").and_then(|a| a.get("bytes")).is_some());
            last = ts;
        }
        assert_eq!(seen, 4, "track {track} event count");
    }
}

#[test]
fn seq_and_depth_survive_the_round_trip() {
    let run = synthetic_run();
    let spans = events_to_spans(&run.events);
    let json = chrome_trace_json(&spans, "roundtrip", &[]);
    let doc = parse_json(&json).expect("export parses as JSON");

    let chunk_args: Vec<(f64, f64, f64)> = complete_events(&doc)
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("chunk"))
        .map(|e| {
            let args = e.get("args").unwrap();
            (
                e.get("tid").and_then(Value::as_f64).unwrap(),
                args.get("seq").and_then(Value::as_f64).unwrap(),
                args.get("depth").and_then(Value::as_f64).unwrap(),
            )
        })
        .collect();
    // Sender posts at depths 1 then 2; receiver drains at 2 then 1.
    assert_eq!(
        chunk_args,
        vec![(0.0, 0.0, 1.0), (0.0, 1.0, 2.0), (1.0, 0.0, 2.0), (1.0, 1.0, 1.0)]
    );

    // Non-pipelined events must not grow the annotations.
    for e in complete_events(&doc) {
        if e.get("name").and_then(Value::as_str) != Some("chunk") {
            let args = e.get("args").unwrap();
            assert!(args.get("seq").is_none() && args.get("depth").is_none());
        }
    }
}
