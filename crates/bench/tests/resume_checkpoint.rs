//! Regression tests for `figures --resume` checkpoint loading: a corrupt
//! checkpoint must produce a loud warning naming the file and the parse
//! error (it used to be silently discarded), a schema-version mismatch
//! stays fatal, and the normal paths (missing file, valid checkpoint,
//! platform mismatch) keep their behavior.

use std::path::PathBuf;

use nonctg_bench::{load_resume_checkpoint, ResumeLoad};
use nonctg_schemes::{PointStatus, Sweep, SweepPoint};
use nonctg_simnet::{Datapath, PlatformId};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nonctg-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn sample_sweep(platform: PlatformId) -> Sweep {
    let point = |scheme, msg_bytes: usize, time: f64| SweepPoint {
        scheme,
        msg_bytes,
        time,
        bandwidth: msg_bytes as f64 / time,
        slowdown: 1.0,
        status: PointStatus::Ok,
        selected: Datapath::Pack,
        faults: Default::default(),
    };
    Sweep {
        platform,
        points: vec![
            point(nonctg_schemes::Scheme::Reference, 1024, 1e-5),
            point(nonctg_schemes::Scheme::VectorType, 1024, 2e-5),
        ],
        faults: Default::default(),
    }
}

#[test]
fn missing_checkpoint_is_a_quiet_fresh_start() {
    let path = tmp("does-not-exist.json");
    std::fs::remove_file(&path).ok();
    assert!(matches!(
        load_resume_checkpoint(&path, PlatformId::SkxImpi),
        ResumeLoad::Fresh
    ));
}

#[test]
fn valid_checkpoint_resumes_with_its_points() {
    let path = tmp("valid.json");
    std::fs::write(&path, sample_sweep(PlatformId::SkxImpi).to_checkpoint_json()).unwrap();
    match load_resume_checkpoint(&path, PlatformId::SkxImpi) {
        ResumeLoad::Resumed(s) => {
            assert_eq!(s.platform, PlatformId::SkxImpi);
            assert_eq!(s.points.len(), 2);
        }
        other => panic!("expected Resumed, got {other:?}"),
    }
}

#[test]
fn platform_mismatch_warns_and_starts_fresh() {
    let path = tmp("wrong-platform.json");
    std::fs::write(&path, sample_sweep(PlatformId::KnlImpi).to_checkpoint_json()).unwrap();
    match load_resume_checkpoint(&path, PlatformId::SkxImpi) {
        ResumeLoad::FreshWithWarning(msg) => {
            assert!(msg.contains("wrong-platform.json"), "no file name: {msg}");
            assert!(msg.contains("knl-impi") && msg.contains("skx-impi"), "{msg}");
        }
        other => panic!("expected FreshWithWarning, got {other:?}"),
    }
}

/// The pinned bug: `CheckpointError::Parse` used to be swallowed with no
/// mention of what was wrong. A corrupt checkpoint must start fresh with
/// a warning that names the file AND carries the parse error.
#[test]
fn corrupt_checkpoint_warns_loudly_with_file_and_error() {
    let path = tmp("corrupt.json");
    std::fs::write(&path, "{\"schema_version\": 1, \"platform\": \"skx-impi\", ").unwrap();
    match load_resume_checkpoint(&path, PlatformId::SkxImpi) {
        ResumeLoad::FreshWithWarning(msg) => {
            assert!(msg.contains("corrupt.json"), "warning must name the file: {msg}");
            assert!(msg.to_lowercase().contains("corrupt checkpoint"), "{msg}");
            // The parse error itself must survive into the warning (it is
            // the only clue to what happened to the file).
            let parse_err = match Sweep::from_checkpoint_json(
                &std::fs::read_to_string(&path).unwrap(),
            ) {
                Err(nonctg_schemes::CheckpointError::Parse(m)) => m,
                other => panic!("fixture should be a Parse error, got {other:?}"),
            };
            assert!(msg.contains(&parse_err), "parse error missing from warning: {msg}");
        }
        other => panic!("expected FreshWithWarning, got {other:?}"),
    }
}

#[test]
fn version_mismatch_is_fatal() {
    let path = tmp("future-version.json");
    let text = sample_sweep(PlatformId::SkxImpi)
        .to_checkpoint_json()
        .replace("\"schema_version\": 1", "\"schema_version\": 999");
    std::fs::write(&path, text).unwrap();
    match load_resume_checkpoint(&path, PlatformId::SkxImpi) {
        ResumeLoad::Fatal(msg) => {
            assert!(msg.contains("future-version.json"), "{msg}");
            assert!(msg.contains("999"), "{msg}");
        }
        other => panic!("expected Fatal, got {other:?}"),
    }
}
