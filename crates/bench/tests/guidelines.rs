//! Hunold-style performance-guideline checks over quiet sweeps.
//!
//! The checker surfaces guideline violations as data rather than
//! asserting they never happen: the model legitimately breaks
//! "derived ≤ pack+send" inside the packed-eager protocol window
//! (a packed send stays eager while the same payload sent through a
//! derived type goes rendezvous). The acceptance criterion for the
//! adaptive engine selector is therefore relative: automatic datapath
//! selection must add no violations over the forced-pack baseline.
//!
//! The `bsend-vs-send` and `packing-e-vs-v` pairs, by contrast, hold
//! unconditionally on quiet sweeps — both sides of each pair share a
//! protocol at every size, so no window inverts them — and the tests
//! assert exactly that, plus that doctoring either side is detected.

use nonctg_bench::{guideline_violations, guidelines_csv, GUIDELINE_TOL};
use nonctg_schemes::{run_sweep, PingPongConfig, Scheme, Sweep, SweepConfig};
use nonctg_simnet::{Datapath, Platform, PlatformId};

/// A jitter-free platform so guideline ratios are exact model outputs.
fn quiet(id: PlatformId) -> Platform {
    let mut p = Platform::get(id);
    p.jitter_sigma = 0.0;
    p
}

/// A small sweep over the schemes the guidelines compare: 1 KiB to
/// 1 MiB straddles every platform's eager limit without entering the
/// (slow-to-measure) staging-degradation regime past 4 MiB.
fn cfg() -> SweepConfig {
    SweepConfig {
        schemes: vec![
            Scheme::Reference,
            Scheme::Buffered,
            Scheme::VectorType,
            Scheme::Subarray,
            Scheme::PackingElement,
            Scheme::PackingVector,
        ],
        min_bytes: 1 << 10,
        max_bytes: 1 << 20,
        step: 4,
        base: PingPongConfig { reps: 2, flush: false, verify: false, ..Default::default() },
    }
}

/// The packed-eager protocol window of a platform: payload sizes where a
/// packed send is still eager but a derived-type send has already gone
/// rendezvous, so "derived ≤ pack+send" genuinely inverts.
fn packed_eager_window(p: &Platform) -> (u64, u64) {
    let lo = p.proto.eager_limit;
    (lo, (lo as f64 * p.proto.packed_eager_factor) as u64)
}

#[test]
fn quiet_sweeps_obey_guidelines_outside_protocol_windows() {
    for id in PlatformId::ALL {
        let platform = quiet(id);
        let sweep = run_sweep(&platform, &cfg());
        let (lo, hi) = packed_eager_window(&platform);
        for v in guideline_violations(&sweep, GUIDELINE_TOL) {
            // Inside the packed-eager window a packed send stays eager
            // while both the derived-type send AND the contiguous
            // reference have gone rendezvous, so packing legitimately
            // beats both: derived-vs-pack and reference-floor may
            // trigger there, and only there. Subarray and vector share
            // a protocol at every size, so their agreement is
            // unconditional.
            assert_ne!(
                v.guideline, "subarray-vs-vector",
                "{id:?}: subarray/vector disagreement: {}",
                v.detail
            );
            // Bsend always adds its staging copy on top of the plain
            // derived send, and per-element packing always issues more
            // calls than one whole-vector pack, so these orderings hold
            // at every size on every platform — protocol windows don't
            // invert them (both sides of each pair share a protocol).
            assert_ne!(
                v.guideline, "bsend-vs-send",
                "{id:?}: plain send slower than bsend: {}",
                v.detail
            );
            assert_ne!(
                v.guideline, "packing-e-vs-v",
                "{id:?}: whole-vector pack slower than per-element: {}",
                v.detail
            );
            let b = v.msg_bytes as u64;
            assert!(
                b > lo && b <= hi,
                "{id:?}: {} violated at {b} bytes, outside the \
                 packed-eager window ({lo}, {hi}]: {}",
                v.guideline, v.detail
            );
        }
    }
}

#[test]
fn checker_catches_the_cray_packed_eager_window() {
    // Lonestar5 Cray MPICH has packed_eager_factor 2.0 over an 8 KiB
    // eager limit, so the 16 KiB point sends packed-eager but
    // derived-rendezvous — a real, reproducible guideline violation the
    // checker must surface rather than paper over.
    let platform = quiet(PlatformId::Ls5CrayMpich);
    let sweep = run_sweep(&platform, &cfg());
    let violations = guideline_violations(&sweep, GUIDELINE_TOL);
    let hit = violations
        .iter()
        .find(|v| v.guideline == "derived-vs-pack" && v.msg_bytes == 16384)
        .expect("16 KiB packed-eager-window violation should be detected");
    assert!(hit.ratio > 1.2, "window ratio should be decisive, got {}", hit.ratio);
}

#[test]
fn auto_selector_adds_no_violations_over_forced_pack() {
    for id in PlatformId::ALL {
        let auto = run_sweep(&quiet(id), &cfg());
        let pack = run_sweep(&quiet(id).with_datapath(Datapath::Pack), &cfg());
        let key = |s: &Sweep| {
            let mut v: Vec<(String, usize)> = guideline_violations(s, GUIDELINE_TOL)
                .into_iter()
                .map(|g| (g.guideline.to_string(), g.msg_bytes))
                .collect();
            v.sort();
            v
        };
        let auto_v = key(&auto);
        let pack_v = key(&pack);
        assert!(
            auto_v.iter().all(|v| pack_v.contains(v)),
            "{id:?}: auto selection added violations: auto={auto_v:?} pack={pack_v:?}"
        );
    }
}

#[test]
fn checker_detects_doctored_violations() {
    let platform = quiet(PlatformId::SkxImpi);
    let mut sweep = run_sweep(&platform, &cfg());
    let sizes = sweep.sizes();
    let (a, b, c, d, e) = (sizes[0], sizes[1], sizes[2], sizes[3], sizes[4]);
    for p in &mut sweep.points {
        // Derived type 10x slower than pack+send at size `a`.
        if p.scheme == Scheme::VectorType && p.msg_bytes == a {
            p.time *= 10.0;
        }
        // Subarray disagrees with vector at size `b`.
        if p.scheme == Scheme::Subarray && p.msg_bytes == b {
            p.time *= 2.0;
        }
        // A non-contiguous scheme "beats" the contiguous reference at `c`.
        if p.scheme == Scheme::PackingVector && p.msg_bytes == c {
            p.time /= 100.0;
        }
        // Bsend "beats" the plain derived send at size `d`.
        if p.scheme == Scheme::Buffered && p.msg_bytes == d {
            p.time /= 100.0;
        }
        // Per-element packing "beats" the whole-vector pack at size `e`.
        if p.scheme == Scheme::PackingElement && p.msg_bytes == e {
            p.time /= 100.0;
        }
    }
    let violations = guideline_violations(&sweep, GUIDELINE_TOL);
    let has = |g: &str, bytes: usize| {
        violations.iter().any(|v| v.guideline == g && v.msg_bytes == bytes)
    };
    assert!(has("derived-vs-pack", a), "doctored derived-vs-pack at {a} not detected");
    assert!(has("subarray-vs-vector", b), "doctored subarray mismatch at {b} not detected");
    assert!(has("reference-floor", c), "doctored reference-floor at {c} not detected");
    assert!(has("bsend-vs-send", d), "doctored bsend-vs-send at {d} not detected");
    assert!(has("packing-e-vs-v", e), "doctored packing-e-vs-v at {e} not detected");

    let csv = guidelines_csv(&sweep, GUIDELINE_TOL);
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "platform,guideline,msg_bytes,ratio,detail",
        "csv header"
    );
    assert!(csv.lines().count() > violations.len().min(3), "csv rows present");
    assert!(csv.contains("skx-impi") || csv.contains(platform.id.name()));
}

#[test]
fn unmeasured_points_never_report() {
    let platform = quiet(PlatformId::SkxImpi);
    let mut sweep = run_sweep(&platform, &cfg());
    // Break every vector-type point, then mark it failed: the checker
    // must skip the comparison, not report it.
    for p in &mut sweep.points {
        if p.scheme == Scheme::VectorType {
            p.time *= 100.0;
            p.status = nonctg_schemes::PointStatus::Failed;
        }
    }
    let violations = guideline_violations(&sweep, GUIDELINE_TOL);
    assert!(
        violations
            .iter()
            .all(|v| v.guideline != "derived-vs-pack" && v.guideline != "subarray-vs-vector"),
        "failed points leaked into guideline checks: {violations:?}"
    );
}
