//! Bench-regression sentinel over the append-only `BENCH_history/`.
//!
//! Loads every history entry for a bench (written by `pack_baseline` /
//! `datapath_baseline` through the history helper), extracts its
//! lower-is-better metrics, and compares the newest entry against the
//! trailing median of the older ones. A metric regresses when it
//! exceeds `median + max(tol * median, 3 * MAD)` — the MAD term absorbs
//! a metric's own historical noise, the fractional term gives quiet
//! metrics headroom. Fewer than three entries (so fewer than two
//! baselines) is a quiet pass: a cold history cannot regress.
//!
//! Exits 1 when any metric regressed, 0 otherwise.
//!
//! Usage: `regress [--bench NAME] [--tolerance FRAC] [--history DIR]`
//! (defaults: bench `pack`, tolerance `0.20`, dir
//! `$NONCTG_BENCH_HISTORY` or `BENCH_history`).

use std::path::PathBuf;
use std::process::ExitCode;

use nonctg_bench::history::{detect_regressions, history_dir, load_history, metrics_of};

fn main() -> ExitCode {
    let mut bench = "pack".to_string();
    let mut tolerance = 0.20f64;
    let mut dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} expects a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--bench" => bench = take("--bench"),
            "--tolerance" => {
                tolerance = take("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance expects a fraction like 0.2");
                    std::process::exit(2);
                })
            }
            "--history" => dir = Some(PathBuf::from(take("--history"))),
            "--help" | "-h" => {
                println!("usage: regress [--bench NAME] [--tolerance FRAC] [--history DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let dir = dir.unwrap_or_else(history_dir);

    let entries = load_history(&dir, &bench);
    if entries.len() < 3 {
        println!(
            "{}: {} history entr{} for '{bench}' — need 3+ to judge, passing",
            dir.display(),
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::SUCCESS;
    }
    let newest = entries.last().unwrap();
    println!(
        "{}: {} entries for '{bench}', newest {} (sha {})",
        dir.display(),
        entries.len(),
        newest.path.file_name().unwrap_or_default().to_string_lossy(),
        newest.git_sha
    );

    let runs: Vec<Vec<(String, f64)>> = entries.iter().map(|e| metrics_of(&e.payload)).collect();
    let n_metrics = runs.last().map(Vec::len).unwrap_or(0);
    if n_metrics == 0 {
        println!("newest entry exposes no metrics — nothing to judge, passing");
        return ExitCode::SUCCESS;
    }
    let regressions = detect_regressions(&runs, tolerance);

    for r in &regressions {
        eprintln!(
            "REGRESSION {:<28} newest {:.4e} vs median {:.4e} (allowed {:.4e}, {:+.1}%)",
            r.metric,
            r.newest,
            r.median,
            r.allowed,
            100.0 * (r.newest / r.median - 1.0)
        );
    }
    if regressions.is_empty() {
        println!("{n_metrics} metric(s) within tolerance {tolerance} of trailing median: ok");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} of {n_metrics} metric(s) regressed", regressions.len());
        ExitCode::FAILURE
    }
}
