//! Differential correctness oracle driver.
//!
//! Sweeps adversarially-constructed derived datatypes through
//! `nonctg_datatype::check_type` (every production engine against the
//! naive typemap interpreter) and drives the fabric's streamed datapath
//! with runtime invariant checks enabled. Deterministic: a fixed default
//! seed, overridable with `--seed`, reproduces any failure exactly, and
//! the minimized repro (`OracleReport`) is printed and written to the
//! artifact file so CI uploads carry it.
//!
//! ```text
//! cargo run -p nonctg-bench --bin oracle -- [--cases N] [--seed S] [--out DIR]
//! ```
//!
//! Exit status is nonzero iff any phase found a disagreement.
//!
//! Phases:
//! 1. **corpus** — named deterministic edge cases (zero-length blocks,
//!    negative strides, LB/UB padding, struct epsilon, sparse subarray
//!    children, deep mixed nests) at counts 0..4.
//! 2. **random** — `--cases` seeded random type trees over every
//!    constructor of the algebra.
//! 3. **eviction** — `PLAN_CACHE_CAP + 16` distinct types to force LRU
//!    eviction, then the earliest types again through the recompile path.
//! 4. **straddle** — packed sizes walking across the pipeline threshold,
//!    both through `check_type` and through a live two-rank exchange on
//!    the streamed datapath with `NONCTG_ORACLE` invariants force-enabled.

use std::fmt::Write as _;
use std::process::ExitCode;

use nonctg_core::datatype::plan::PLAN_CACHE_CAP;
use nonctg_core::datatype::{
    as_bytes, as_bytes_mut, check_type, pack, unpack_from, ArrayOrder, Datatype,
};
use nonctg_core::simnet::Platform;
use nonctg_core::{set_oracle_checks, Universe};

const DEFAULT_CASES: usize = 256;
const DEFAULT_SEED: u64 = 0x0C0FFEE0;
/// Pipeline threshold the straddle phase pins (small enough to exercise
/// the streamed datapath with test-sized payloads and to keep the type
/// under the oracle's entry cap).
const STRADDLE_THRESHOLD: u64 = 64 * 1024;
const STRADDLE_CHUNK: u64 = 8 * 1024;

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

fn leaf(rng: &mut XorShift) -> Datatype {
    match rng.below(6) {
        0 => Datatype::f64(),
        1 => Datatype::f32(),
        2 => Datatype::i32(),
        3 => Datatype::i64(),
        4 => Datatype::byte(),
        _ => Datatype::complex128(),
    }
}

/// A random type tree mirroring the proptest generator: every
/// constructor, hostile parameters (zero counts and blocklengths,
/// negative strides and displacements, LB/UB padding), bounded depth.
fn random_type(rng: &mut XorShift, depth: usize) -> Datatype {
    if depth == 0 || rng.below(4) == 0 {
        return leaf(rng);
    }
    let child = random_type(rng, depth - 1);
    match rng.below(9) {
        0 => Datatype::contiguous(rng.below(4) as usize, &child).unwrap(),
        1 => Datatype::vector(
            rng.below(4) as usize,
            rng.below(4) as usize,
            rng.range(-4, 6),
            &child,
        )
        .unwrap(),
        2 => Datatype::hvector(
            rng.below(4) as usize,
            rng.below(3) as usize,
            rng.range(-40, 64),
            &child,
        )
        .unwrap(),
        3 => {
            let blocks: Vec<(usize, i64)> = (0..rng.below(4))
                .map(|_| (rng.below(4) as usize, rng.range(-6, 8)))
                .collect();
            Datatype::indexed(&blocks, &child).unwrap()
        }
        4 => {
            let blocks: Vec<(usize, i64)> = (0..rng.below(4))
                .map(|_| (rng.below(4) as usize, rng.range(-48, 64)))
                .collect();
            Datatype::hindexed(&blocks, &child).unwrap()
        }
        5 => {
            let disps: Vec<i64> = (0..rng.below(4)).map(|_| rng.range(-6, 8)).collect();
            Datatype::indexed_block(rng.below(3) as usize, &disps, &child).unwrap()
        }
        6 => {
            let fields: Vec<(usize, i64, Datatype)> = (0..1 + rng.below(3))
                .map(|_| {
                    (
                        rng.below(3) as usize,
                        rng.range(-32, 48),
                        random_type(rng, depth - 1),
                    )
                })
                .collect();
            Datatype::structure(&fields).unwrap()
        }
        7 => {
            let ndims = 1 + rng.below(2) as usize;
            let mut sizes = Vec::new();
            let mut subsizes = Vec::new();
            let mut starts = Vec::new();
            for _ in 0..ndims {
                let size = 1 + rng.below(4) as usize;
                let sub = rng.below(size as u64 + 1) as usize;
                let start = rng.below((size - sub) as u64 + 1) as usize;
                sizes.push(size);
                subsizes.push(sub);
                starts.push(start);
            }
            let order = if rng.below(2) == 0 { ArrayOrder::C } else { ArrayOrder::Fortran };
            Datatype::subarray(&sizes, &subsizes, &starts, order, &child).unwrap()
        }
        _ => {
            let lb = child.lb() - rng.range(0, 24);
            let extent = (child.ub() - lb) as u64 + rng.below(24);
            Datatype::resized(&child, lb, extent).unwrap()
        }
    }
}

/// Named deterministic edge cases: each is a past or plausible bug class.
fn corpus() -> Vec<(&'static str, Datatype)> {
    let f64t = Datatype::f64();
    let sparse = Datatype::vector(2, 1, 2, &f64t).unwrap();
    vec![
        ("zero-length indexed blocks", {
            Datatype::indexed(&[(0, 5), (3, -2), (0, 0), (2, 4)], &f64t).unwrap()
        }),
        ("zero-blocklen vector", Datatype::vector(4, 0, 3, &Datatype::i32()).unwrap()),
        ("empty contiguous", Datatype::contiguous(0, &f64t).unwrap()),
        ("negative-stride vector", Datatype::vector(4, 2, -3, &f64t).unwrap()),
        ("negative-stride hvector", Datatype::hvector(3, 1, -40, &Datatype::i64()).unwrap()),
        ("negative indexed displacements", {
            Datatype::indexed_block(2, &[-4, 0, 5], &Datatype::i32()).unwrap()
        }),
        ("LB/UB padded vector", {
            Datatype::resized(&Datatype::vector(3, 1, 2, &f64t).unwrap(), -16, 80).unwrap()
        }),
        ("shrunk extent overlap", {
            Datatype::resized(&Datatype::contiguous(3, &f64t).unwrap(), 0, 8).unwrap()
        }),
        ("struct epsilon padding", {
            Datatype::structure(&[
                (1, 0, Datatype::i32()),
                (1, 5, Datatype::byte()),
                (2, 8, f64t.clone()),
            ])
            .unwrap()
        }),
        ("out-of-order struct fields", {
            Datatype::structure(&[
                (1, 16, f64t.clone()),
                (1, 0, Datatype::i32()),
                (1, 8, Datatype::of::<u16>()),
            ])
            .unwrap()
        }),
        ("sparse-child subarray", {
            Datatype::subarray(&[4], &[2], &[1], ArrayOrder::C, &sparse).unwrap()
        }),
        ("fortran-order subarray", {
            Datatype::subarray(&[3, 4], &[2, 2], &[1, 1], ArrayOrder::Fortran, &f64t).unwrap()
        }),
        ("vector of mixed struct", {
            let inner = Datatype::structure(&[
                (1, 0, Datatype::i32()),
                (1, 8, f64t.clone()),
            ])
            .unwrap();
            Datatype::vector(3, 1, 2, &inner).unwrap()
        }),
        ("hindexed of padded vector", {
            let padded =
                Datatype::resized(&Datatype::vector(2, 1, 3, &Datatype::f32()).unwrap(), -8, 48)
                    .unwrap();
            Datatype::hindexed(&[(2, 0), (1, -24), (2, 96)], &padded).unwrap()
        }),
    ]
}

/// Runs `check_type` and folds any report into `failures`.
fn run_case(name: &str, t: &Datatype, count: usize, seed: u64, failures: &mut Vec<String>) {
    if let Err(r) = check_type(t, count, seed) {
        let mut line = String::new();
        let _ = write!(line, "[{name}] {r}");
        eprintln!("FAIL {line}");
        failures.push(line);
    }
}

/// Live two-rank exchange on the streamed datapath: rank 0 sends `count`
/// instances of a strided type, rank 1 receives and returns its buffer;
/// the result must equal a local pack/unpack round trip. Invariant
/// checks are already force-enabled process-wide.
fn straddle_exchange(count: usize, failures: &mut Vec<String>) {
    let t = Datatype::vector(64, 16, 17, &Datatype::f64()).unwrap().commit();
    let elems = (t.extent() as usize / 8) * count + 16;
    let src: Vec<f64> = (0..elems).map(|i| i as f64 * 0.25 + 1.0).collect();

    let mut expected = vec![0.0f64; elems];
    let packed = pack(as_bytes(&src), 0, &t, count).expect("local pack");
    unpack_from(&packed, &t, count, as_bytes_mut(&mut expected), 0).expect("local unpack");

    let mut p = Platform::skx_impi().with_pipeline(STRADDLE_THRESHOLD, STRADDLE_CHUNK);
    p.jitter_sigma = 0.0;
    let p = p.with_deadlock_timeout(10.0);
    let t2 = t.clone();
    let src2 = src.clone();
    let (_, received) = Universe::run_pair(p, move |comm| {
        if comm.rank() == 0 {
            comm.ssend(as_bytes(&src2), 0, &t2, count, 1, 3).unwrap();
            Vec::new()
        } else {
            let mut buf = vec![0.0f64; elems];
            comm.recv(as_bytes_mut(&mut buf), 0, &t2, count, Some(0), Some(3)).unwrap();
            buf
        }
    });
    let bytes = t.size() * count as u64;
    if received != expected {
        let line = format!(
            "[straddle] streamed exchange of {bytes} packed bytes (count {count}) \
             delivered wrong data"
        );
        eprintln!("FAIL {line}");
        failures.push(line);
    } else {
        println!("  straddle count {count}: {bytes} B delivered intact");
    }
}

fn main() -> ExitCode {
    let mut cases = DEFAULT_CASES;
    let mut seed = DEFAULT_SEED;
    let mut out_dir = String::from("results/oracle");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--cases" => cases = val("--cases").parse().expect("--cases: integer"),
            "--seed" => seed = val("--seed").parse().expect("--seed: integer"),
            "--out" => out_dir = val("--out"),
            other => {
                eprintln!("unknown argument {other} (expected --cases/--seed/--out)");
                return ExitCode::from(2);
            }
        }
    }

    set_oracle_checks(true);
    let mut failures: Vec<String> = Vec::new();

    println!("== phase 1: deterministic corpus ==");
    for (name, t) in corpus() {
        for count in 0..4 {
            run_case(name, &t, count, seed ^ count as u64, &mut failures);
        }
    }

    println!("== phase 2: random sweep ({cases} cases, seed {seed:#x}) ==");
    let mut rng = XorShift::new(seed);
    for i in 0..cases {
        let t = random_type(&mut rng, 3);
        let count = rng.below(4) as usize;
        let case_seed = rng.next();
        run_case(&format!("random #{i}"), &t, count, case_seed, &mut failures);
    }

    println!("== phase 3: plan-cache eviction ({} types) ==", PLAN_CACHE_CAP + 16);
    let evict: Vec<Datatype> = (0..PLAN_CACHE_CAP + 16)
        .map(|i| Datatype::vector(2 + i % 7, 1 + i % 3, 4, &Datatype::f64()).unwrap())
        .collect();
    for (i, t) in evict.iter().enumerate() {
        run_case(&format!("evict #{i}"), t, 1 + i % 2, seed ^ (i as u64) << 8, &mut failures);
    }
    for (i, t) in evict.iter().take(8).enumerate() {
        run_case(&format!("evict-recompile #{i}"), t, 2, seed ^ 0xE000 ^ i as u64, &mut failures);
    }

    println!(
        "== phase 4: pipeline-threshold straddle (threshold {STRADDLE_THRESHOLD} B) =="
    );
    // Packed bytes per instance: 64 * 16 * 8 = 8192; counts walk the
    // packed size across the threshold (under / at / over).
    let straddle_type = Datatype::vector(64, 16, 17, &Datatype::f64()).unwrap();
    for count in [7usize, 8, 9] {
        run_case(&format!("straddle count {count}"), &straddle_type, count, seed, &mut failures);
        straddle_exchange(count, &mut failures);
    }

    let mut summary = String::new();
    let _ = writeln!(summary, "oracle sweep: seed {seed:#x}, {cases} random cases");
    let _ = writeln!(summary, "failures: {}", failures.len());
    for f in &failures {
        let _ = writeln!(summary, "  {f}");
    }
    std::fs::create_dir_all(&out_dir).expect("out dir");
    let path = format!("{out_dir}/summary.txt");
    std::fs::write(&path, &summary).expect("write summary");
    println!("\n{summary}wrote {path}");

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
