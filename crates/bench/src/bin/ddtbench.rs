//! ddtbench application-kernel sweeps: the four ported application
//! access patterns (LAMMPS atom exchange, MILC su3 zdown, NAS MG/LU face
//! exchange, WRF x-halo), each measured under the contiguous reference,
//! explicit pack, derived-datatype send, and pack-then-send, across the
//! modeled platforms.
//!
//! ```text
//! cargo run --release -p nonctg-bench --bin ddtbench -- --quick
//! cargo run --release -p nonctg-bench --bin ddtbench -- --platform knl-impi
//! ```
//!
//! Writes `ddtbench_<kernel>_<platform>.svg/.csv` plus a
//! `guidelines_ddtbench_<kernel>_<platform>.csv` violation table per
//! sweep (the Hunold-style self-consistency checks, applied to the
//! kernel's scheme subset).

use std::time::Instant;

use nonctg_bench::{ascii_figure, guidelines_csv, write_figure, Options, GUIDELINE_TOL};
use nonctg_report::{fmt_bytes, fmt_time, Table};
use nonctg_schemes::{run_kernel_sweep, AppKernel, KERNEL_SCHEMES};

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = opts.sweep_config();
    for platform in opts.platforms() {
        for kernel in AppKernel::ALL {
            let title = format!("{} on {}", kernel.label(), platform.id);
            eprintln!("== {title} ==");
            let wall = Instant::now();
            let sweep = run_kernel_sweep(&platform, kernel, &cfg);
            for p in &sweep.points {
                eprintln!(
                    "  {:>10}  {:<12} {:>12}  slowdown {:>6.2}  [{}]",
                    fmt_bytes(p.msg_bytes),
                    p.scheme.key(),
                    fmt_time(p.time),
                    p.slowdown,
                    p.selected.name(),
                );
            }
            let stem = format!("ddtbench_{}_{}", kernel.key(), platform.id);
            let svg = write_figure(&opts.out_dir, &stem, &title, &sweep);
            eprintln!(
                "  wrote {} (+ .csv) in {:.1}s wall",
                svg.display(),
                wall.elapsed().as_secs_f64()
            );

            let gpath = opts.out_dir.join(format!("guidelines_{stem}.csv"));
            let gcsv = guidelines_csv(&sweep, GUIDELINE_TOL);
            let violations = gcsv.lines().count().saturating_sub(1);
            std::fs::write(&gpath, gcsv).expect("write guidelines csv");
            eprintln!("  wrote {} ({} violation(s))", gpath.display(), violations);

            // Terminal summary: slowdown per kernel scheme at the
            // smallest, middle, and largest realized size.
            let sizes = sweep.sizes();
            if sizes.is_empty() {
                continue;
            }
            let picks: Vec<usize> = [0usize, sizes.len() / 2, sizes.len() - 1]
                .iter()
                .map(|&i| sizes[i])
                .collect();
            let mut t = Table::new(
                std::iter::once("scheme".to_string())
                    .chain(picks.iter().map(|&b| format!("slowdown @{}", fmt_bytes(b)))),
            );
            for scheme in KERNEL_SCHEMES {
                let mut row = vec![scheme.label().to_string()];
                for &b in &picks {
                    row.push(
                        sweep
                            .get(scheme, b)
                            .map(|p| format!("{:.2}", p.slowdown))
                            .unwrap_or_default(),
                    );
                }
                t.row(row);
            }
            println!("{}", t.render());
            if opts.ascii {
                println!("{}", ascii_figure(&sweep));
            }
        }
    }
}
