//! Critical-path and pipeline-bubble analysis of an instrumented run,
//! recorded under `analysis_out/`.
//!
//! Runs the standard observability workload — a two-rank vector-type
//! ping-pong over [`OBS_ELEMS`] elements — with tracing and metrics on,
//! forced through the staged (pack) datapath with a small chunk size so
//! the pipelined rendezvous produces a long chunk stream, then:
//!
//! 1. computes the virtual-time **critical path** through the traced
//!    event DAG and *asserts* its edge sum is bit-equal to the run's
//!    traced elapsed time (the edges tile the run exactly — any gap or
//!    overlap is a bug in the tracer or the analyzer);
//! 2. computes the **pipeline report** for the receiver — overlap
//!    efficiency from chunk-ring occupancy (chunk virtual timestamps
//!    within a transfer are degenerate by design, so occupancy is the
//!    only honest signal), ring-stall time, bubble time (asserted to
//!    partition the receiver's elapsed window exactly), and carry-buffer
//!    dead time priced at the measured memcpy roofline;
//! 3. writes `analysis.json`, `gantt.svg`, and `gantt.txt`, and prints
//!    the ASCII gantt.
//!
//! Exits non-zero if any invariant fails.
//!
//! Usage: `analyze [OUT_DIR]` (default `analysis_out`).

use std::fs;
use std::path::PathBuf;

use nonctg_bench::{events_to_spans, memcpy_reference, OBS_ELEMS};
use nonctg_report::analysis::{critical_path, gantt_ascii, gantt_svg, pipeline_report};
use nonctg_schemes::{try_run_scheme_observed, Observe, PingPongConfig, Scheme, Workload};
use nonctg_simnet::Platform;

/// Chunk size forced for this run: 128 KiB over the ~4 MiB packed
/// payload yields a ~32-chunk stream, long enough that the ring-depth
/// occupancy statistic is meaningful.
const CHUNK_BYTES: &str = "131072";
/// Streaming threshold forced well below the payload.
const THRESHOLD_BYTES: &str = "1048576";

fn set_default(key: &str, value: &str) {
    if std::env::var_os(key).is_none() {
        std::env::set_var(key, value);
    }
}

fn main() {
    let out_dir = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| "analysis_out".into()));

    // Must happen before any platform/selector use: both specs are
    // resolved once per process.
    set_default("NONCTG_PIPELINE_CHUNK", CHUNK_BYTES);
    set_default("NONCTG_PIPELINE_THRESHOLD", THRESHOLD_BYTES);
    set_default("NONCTG_DATAPATH", "pack");

    let platform = Platform::skx_impi();
    let w = Workload::every_other(OBS_ELEMS);
    let cfg = PingPongConfig { reps: 3, ..PingPongConfig::default() };
    let run = try_run_scheme_observed(&platform, Scheme::VectorType, &w, &cfg, Observe::ALL)
        .expect("instrumented ping-pong failed");

    let spans = events_to_spans(&run.events);
    let names: Vec<String> = (0..run.events.len()).map(|r| format!("rank {r}")).collect();
    println!(
        "{} vector ping-pong: {} events over {} ranks, {:.3e} s virtual",
        platform.id.name(),
        spans.len(),
        run.events.len(),
        run.trace_elapsed()
    );

    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if ok {
            println!("  ok   {what}");
        } else {
            eprintln!("  FAIL {what}");
            failures += 1;
        }
    };

    // -- critical path ------------------------------------------------
    let path = critical_path(&spans).expect("trace has no positive-width spans");
    let elapsed = run.trace_elapsed();
    check(
        path.edge_sum().to_bits() == elapsed.to_bits(),
        "critical-path edge sum bit-equal to traced elapsed time",
    );
    println!(
        "  critical path: {} edges, {:.3e} s ({:.1}% idle)",
        path.edges.len(),
        path.elapsed(),
        100.0 * path.idle_total() / path.elapsed()
    );
    for (track, busy) in path.by_track() {
        println!("    rank {track}: {busy:.3e} s on path");
    }
    for (phase, secs) in path.by_phase() {
        println!("    {phase:>8}: {secs:.3e} s");
    }

    // -- pipeline report ----------------------------------------------
    let copy_bw = memcpy_reference(4 << 20, 0.1);
    let receiver = 1;
    let report = pipeline_report(
        &spans,
        &path,
        receiver,
        nonctg_core::CHUNK_RING_DEPTH as u32,
        Some(copy_bw),
    )
    .expect("receiver drained no chunks — pipeline did not engage");
    println!(
        "  pipeline: {} chunks, mean ring depth {:.3}, overlap efficiency {:.3}, \
         primed {:.1}%, receiver on path {:.3e} s, ring stall {:.3e} s, bubbles {:.3e} s, \
         carry {} B ({:.3e} s dead at {:.2} GB/s memcpy)",
        report.chunks,
        report.mean_depth,
        report.overlap_efficiency,
        100.0 * report.primed_fraction,
        report.critical_on_receiver_s,
        report.ring_stall_s,
        report.bubble_s,
        report.carry_bytes,
        report.carry_dead_s.unwrap_or(0.0),
        copy_bw / 1e9
    );
    check(report.overlap_efficiency > 0.0, "overlap efficiency > 0 (ring actually primed)");
    check(
        report.overlap_efficiency < 1.0,
        "overlap efficiency < 1 (final drain always lands at depth 1)",
    );
    check(report.tiling_exact, "clipped critical path tiles the receiver window bit-exactly");
    check(
        (report.critical_on_receiver_s + report.bubble_s).to_bits()
            == report.receiver_elapsed_s.to_bits(),
        "receiver's critical share + bubbles partition its elapsed time",
    );
    check(report.bubble_s > 0.0, "bubbles are visible (receiver never owns the whole window)");

    // -- artifacts ----------------------------------------------------
    fs::create_dir_all(&out_dir).expect("create analysis output dir");
    let json = format!(
        "{{\n\"critical_path\": {},\n\"pipeline\": {}\n}}\n",
        path.to_json().trim_end(),
        report.to_json()
    );
    fs::write(out_dir.join("analysis.json"), json).expect("write analysis.json");
    fs::write(out_dir.join("gantt.svg"), gantt_svg(&spans, &path, &names)).expect("write gantt.svg");
    let art = gantt_ascii(&spans, &path, 100);
    fs::write(out_dir.join("gantt.txt"), &art).expect("write gantt.txt");
    print!("{art}");
    println!("wrote {}/analysis.json, gantt.svg, gantt.txt", out_dir.display());

    if failures > 0 {
        eprintln!("{failures} invariant(s) failed");
        std::process::exit(1);
    }
}
