//! §4.7(1) — irregular spacing.
//!
//! "Types with less regular spacing may give worse performance due to
//! decreased use of prefetch streams in reading data." Compares a direct
//! send of the regular stride-2 vector against indexed types with random
//! displacements of the same payload and mean density.

use nonctg_bench::Options;
use nonctg_report::{fmt_bytes, fmt_time, Table};
use nonctg_schemes::{run_datatype_send, PingPongConfig, IrregularWorkload, Workload};

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&opts.out_dir).expect("out dir");
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let sizes: Vec<usize> = [1usize << 14, 1 << 18, 1 << 22].to_vec();

    for platform in opts.platforms() {
        println!("== irregular spacing on {} ==", platform.id);
        let mut t = Table::new(["payload", "layout", "time", "vs regular"]);
        for &bytes in &sizes {
            let elems = bytes / Workload::ELEM;
            let cfg = PingPongConfig { reps: opts.reps.min(10), ..PingPongConfig::default() }
                .adaptive(bytes);

            // Regular stride-2 vector baseline.
            let w = Workload::every_other(elems);
            let regular = run_datatype_send(
                &platform,
                &w.vector_type().expect("type"),
                w.make_source(),
                w.expected(),
                &cfg,
            )
            .time();

            let mut row = |label: String, time: f64| {
                t.row([
                    fmt_bytes(bytes),
                    label.clone(),
                    fmt_time(time),
                    format!("{:.2}x", time / regular),
                ]);
                csv_rows.push(vec![
                    platform.id.name().into(),
                    label,
                    bytes.to_string(),
                    format!("{:.9e}", time),
                    format!("{:.4}", time / regular),
                ]);
            };
            row("regular stride-2".into(), regular);

            // Irregular layouts at the same payload and mean spacing.
            for (label, blocklen) in [("random, blocks of 1", 1usize), ("random, blocks of 8", 8)] {
                let iw = IrregularWorkload::random(elems / blocklen, blocklen, 2 * blocklen, 42);
                let time = run_datatype_send(
                    &platform,
                    &iw.indexed_type().expect("type"),
                    iw.make_source(),
                    iw.expected(),
                    &cfg,
                )
                .time();
                row(label.into(), time);
            }
        }
        println!("{}", t.render());
        println!("  (paper: less regular spacing degrades the gather; larger blocks recover)\n");
    }

    let csv = nonctg_report::csv::to_csv(
        &["platform", "layout", "payload_bytes", "time_s", "vs_regular"],
        &csv_rows,
    );
    let path = opts.out_dir.join("spacing.csv");
    std::fs::write(&path, csv).expect("write csv");
    eprintln!("wrote {}", path.display());
}
