//! Regenerates the paper's figures 1–4: for each modeled installation, a
//! three-panel figure (time, bandwidth, slowdown) over the eight send
//! schemes and a sweep of message sizes.
//!
//! ```text
//! cargo run --release -p nonctg-bench --bin figures -- --platform skx-impi
//! cargo run --release -p nonctg-bench --bin figures -- --quick   # all four, small sweep
//! ```

use std::time::Instant;

use nonctg_bench::{
    ascii_figure, guidelines_csv, load_resume_checkpoint, write_figure, write_observability,
    write_phases, Options, ResumeLoad, GUIDELINE_TOL,
};
use nonctg_report::{fmt_bytes, fmt_time, Table};
use nonctg_schemes::{
    run_phase_sweep_with, run_sweep_parallel, run_sweep_resilient_with, run_sweep_sharded,
    run_sweep_with, PointStatus, Resilience, Scheme, SweepPoint,
};

fn progress_line(p: &SweepPoint) {
    match p.status {
        PointStatus::Ok => eprintln!(
            "  {:>10}  {:<12} {:>12}  slowdown {:>6.2}",
            fmt_bytes(p.msg_bytes),
            p.scheme.key(),
            fmt_time(p.time),
            p.slowdown
        ),
        _ => eprintln!(
            "  {:>10}  {:<12} {:>12}",
            fmt_bytes(p.msg_bytes),
            p.scheme.key(),
            p.status.key()
        ),
    }
}

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = opts.sweep_config();
    if opts.resilient() && opts.platforms.len() > 1 && opts.resume.is_some() {
        eprintln!("--resume with multiple platforms shares one checkpoint file; run per platform");
        std::process::exit(2);
    }
    for platform in opts.platforms() {
        let fig = platform.id.paper_figure();
        let title = format!("Packing on {} (paper figure {fig})", platform.id);
        eprintln!("== {title} ==");
        let wall = Instant::now();
        let sweep = if opts.resilient() {
            let resume = opts.resume.as_ref().and_then(|path| {
                match load_resume_checkpoint(path, platform.id) {
                    ResumeLoad::Resumed(s) => {
                        eprintln!("  resuming from {} ({} points)", path.display(), s.points.len());
                        Some(s)
                    }
                    ResumeLoad::Fresh => None,
                    ResumeLoad::FreshWithWarning(msg) => {
                        eprintln!("{msg}");
                        None
                    }
                    ResumeLoad::Fatal(msg) => {
                        eprintln!("error: {msg}");
                        std::process::exit(2);
                    }
                }
            });
            let res = Resilience {
                retries: opts.retries,
                checkpoint: opts.resume.clone(),
                resume,
                skip_scheme_after: None,
            };
            run_sweep_resilient_with(&platform, &cfg, &res, progress_line)
        } else if opts.shards > 1 {
            run_sweep_sharded(&platform, &cfg, opts.shards)
        } else if opts.jobs > 1 {
            run_sweep_parallel(&platform, &cfg, opts.jobs)
        } else {
            run_sweep_with(&platform, &cfg, progress_line)
        };
        if opts.chaos {
            println!("{}", sweep.health());
        }
        let stem = format!("fig{fig}_{}", platform.id);
        let svg = write_figure(&opts.out_dir, &stem, &title, &sweep);
        eprintln!(
            "  wrote {} (+ .csv) in {:.1}s wall",
            svg.display(),
            wall.elapsed().as_secs_f64()
        );

        // Self-consistency guideline check over the measured sweep; the
        // CSV rides next to the figure so CI and the site can diff it.
        let gpath = opts.out_dir.join(format!("guidelines_{stem}.csv"));
        let gcsv = guidelines_csv(&sweep, GUIDELINE_TOL);
        let violations = gcsv.lines().count().saturating_sub(1);
        std::fs::write(&gpath, gcsv).expect("write guidelines csv");
        eprintln!("  wrote {} ({} violation(s))", gpath.display(), violations);

        // Terminal summary table: slowdown per scheme at three sizes.
        let sizes = sweep.sizes();
        let picks: Vec<usize> = [0usize, sizes.len() / 2, sizes.len().saturating_sub(1)]
            .iter()
            .map(|&i| sizes[i.min(sizes.len() - 1)])
            .collect();
        let mut t = Table::new(
            std::iter::once("scheme".to_string())
                .chain(picks.iter().map(|&b| format!("slowdown @{}", fmt_bytes(b)))),
        );
        for scheme in Scheme::ALL {
            let mut row = vec![scheme.label().to_string()];
            for &b in &picks {
                row.push(
                    sweep
                        .get(scheme, b)
                        .map(|p| {
                            if p.slowdown.is_finite() {
                                format!("{:.2}", p.slowdown)
                            } else {
                                p.status.key().to_string()
                            }
                        })
                        .unwrap_or_default(),
                );
            }
            t.row(row);
        }
        println!("{}", t.render());
        if opts.ascii {
            println!("{}", ascii_figure(&sweep));
        }

        if opts.phases {
            eprintln!("  attributing phases...");
            let ps = run_phase_sweep_with(&platform, &cfg, |p| {
                eprintln!(
                    "  {:>10}  {:<12} pack {:>10} xfer {:>10} sync {:>10} unpack {:>10}",
                    fmt_bytes(p.msg_bytes),
                    p.scheme.key(),
                    fmt_time(p.phases.pack),
                    fmt_time(p.phases.transfer),
                    fmt_time(p.phases.sync),
                    fmt_time(p.phases.unpack),
                );
            });
            let csv = write_phases(&opts.out_dir, &stem, &ps);
            eprintln!("  wrote {} (+ .json)", csv.display());
        }
    }

    // The instrumented trace/metrics run is a single two-rank ping-pong,
    // independent of the sweeps above; run it once on the first platform.
    if let Some(platform) = opts.platforms().first() {
        write_observability(
            platform,
            opts.trace_out.as_deref(),
            opts.metrics_out.as_deref(),
            opts.ascii,
        );
    }
}
