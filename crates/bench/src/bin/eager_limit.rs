//! §4.5 — the eager limit.
//!
//! Two experiments per platform:
//!
//! 1. **The blip**: per-byte ping-pong time on a fine-grained size grid
//!    bracketing the eager limit, for the reference, vector-type, and
//!    packing(v) schemes. Expect a per-byte jump just past the limit; on
//!    Cray the packing scheme's jump sits at twice the size.
//! 2. **Raising the limit**: set the eager limit above the largest message
//!    and confirm large-message times barely change (the paper's finding).

use nonctg_bench::Options;
use nonctg_report::{fmt_bytes, fmt_time, Table};
use nonctg_schemes::{run_scheme, PingPongConfig, Scheme, Workload};

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = PingPongConfig { reps: opts.reps.min(10), ..PingPongConfig::default() };
    let schemes = [Scheme::Reference, Scheme::VectorType, Scheme::PackingVector];

    std::fs::create_dir_all(&opts.out_dir).expect("out dir");
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for platform in opts.platforms() {
        let limit = platform.proto.eager_limit as usize;
        println!(
            "== eager limit on {} (limit = {}) ==",
            platform.id,
            fmt_bytes(limit)
        );

        // Sizes at 1/4x, 1/2x, ~1x, just over, 2x, just over 2x, 4x.
        let sizes: Vec<usize> = vec![
            limit / 4,
            limit / 2,
            limit,
            limit + Workload::ELEM,
            2 * limit,
            2 * limit + Workload::ELEM,
            4 * limit,
        ];
        let mut t = Table::new(["size", "scheme", "time", "ns/byte"]);
        for &bytes in &sizes {
            let w = Workload::every_other(bytes / Workload::ELEM);
            for scheme in schemes {
                let r = run_scheme(&platform, scheme, &w, &cfg.clone().adaptive(bytes));
                let per_byte = r.time() / w.msg_bytes() as f64 * 1e9;
                t.row([
                    fmt_bytes(w.msg_bytes()),
                    scheme.label().to_string(),
                    fmt_time(r.time()),
                    format!("{per_byte:.3}"),
                ]);
                csv_rows.push(vec![
                    platform.id.name().into(),
                    scheme.key().into(),
                    w.msg_bytes().to_string(),
                    format!("{:.9e}", r.time()),
                    format!("{per_byte:.4}"),
                ]);
            }
        }
        println!("{}", t.render());

        // Experiment 2: eager limit above the maximum message size.
        let mut raised = platform.clone();
        raised.proto.eager_limit = u64::MAX / 4;
        let big = Workload::every_other((8 << 20) / Workload::ELEM);
        let normal = run_scheme(&platform, Scheme::VectorType, &big, &cfg.clone().adaptive(big.msg_bytes()));
        let lifted = run_scheme(&raised, Scheme::VectorType, &big, &cfg.clone().adaptive(big.msg_bytes()));
        let delta = (lifted.time() - normal.time()) / normal.time() * 100.0;
        println!(
            "  raising the eager limit above {}: vector-type time {} -> {} ({delta:+.1}%)",
            fmt_bytes(big.msg_bytes()),
            fmt_time(normal.time()),
            fmt_time(lifted.time()),
        );
        println!("  (paper: no appreciable change for large messages)\n");
    }

    let csv = nonctg_report::csv::to_csv(
        &["platform", "scheme", "msg_bytes", "time_s", "ns_per_byte"],
        &csv_rows,
    );
    let path = opts.out_dir.join("eager_limit.csv");
    std::fs::write(&path, csv).expect("write csv");
    eprintln!("wrote {}", path.display());
}
