//! Runs the entire experiment suite: figures 1-4 plus every side
//! experiment (§4.5 eager limit, §4.6 cache flush, §4.7 spacing, block
//! size, and processes-per-node, and the §2 cost table), writing all
//! artifacts to the output directory.
//!
//! ```text
//! cargo run --release -p nonctg-bench --bin all -- --quick
//! cargo run --release -p nonctg-bench --bin all            # full sweeps
//! ```

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Validate the options once up front for a clean error message.
    if let Err(e) = nonctg_bench::Options::parse(args.clone()) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let me = std::env::current_exe().expect("current exe");
    let bin_dir = me.parent().expect("bin dir");
    let bins = [
        "figures",
        "eager_limit",
        "cache_flush",
        "spacing",
        "blocksize",
        "procs_per_node",
        "cost_table",
        "ddtbench",
        "site",
    ];
    for bin in bins {
        let path = bin_dir.join(bin);
        eprintln!("\n################ {bin} ################");
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} failed with {status}");
            std::process::exit(1);
        }
    }
    eprintln!("\nall experiments complete");
}
