//! Assemble all artifacts in the output directory into one standalone
//! HTML report (`index.html`): the four figures with per-scheme summary
//! tables plus every side-experiment CSV.
//!
//! ```text
//! cargo run --release -p nonctg-bench --bin site -- --out bench_out
//! ```

use std::fs;
use std::path::Path;

use nonctg_bench::Options;
use nonctg_report::csv::parse_csv;
use nonctg_report::heatmap::{render_heatmap, HeatmapData};
use nonctg_report::html::{render_page, Section};
use nonctg_schemes::AppKernel;
use nonctg_simnet::PlatformId;

fn load_csv_table(path: &Path, max_rows: usize) -> Option<(Vec<String>, Vec<Vec<String>>)> {
    let text = fs::read_to_string(path).ok()?;
    let mut rows = parse_csv(&text);
    if rows.is_empty() {
        return None;
    }
    let header = rows.remove(0);
    rows.truncate(max_rows);
    Some((header, rows))
}

/// Full scheme x size slowdown heatmap from a figure CSV.
fn figure_heatmap(path: &Path, title: &str) -> Option<String> {
    let text = fs::read_to_string(path).ok()?;
    let mut rows = parse_csv(&text);
    if rows.len() < 2 {
        return None;
    }
    rows.remove(0);
    let mut sizes: Vec<usize> = rows.iter().filter_map(|r| r[2].parse().ok()).collect();
    sizes.sort_unstable();
    sizes.dedup();
    // Cap columns so cells stay readable: take every other size if wide.
    let cols: Vec<usize> = if sizes.len() > 12 {
        sizes.iter().copied().step_by(2).collect()
    } else {
        sizes
    };
    let mut schemes: Vec<String> = Vec::new();
    for r in &rows {
        if !schemes.contains(&r[1]) {
            schemes.push(r[1].clone());
        }
    }
    let rows = &rows;
    let values: Vec<Option<f64>> = schemes
        .iter()
        .flat_map(|s| {
            cols.iter().map(move |b| {
                rows.iter()
                    .find(|r| &r[1] == s && r[2] == b.to_string())
                    .and_then(|r| r[5].parse().ok())
            })
        })
        .collect();
    let data = HeatmapData {
        rows: schemes,
        cols: cols.iter().map(|b| nonctg_report::fmt_bytes(*b)).collect(),
        values,
    };
    Some(render_heatmap(title, &data))
}

/// Per-scheme slowdown summary at three sizes, derived from a figure CSV.
fn figure_summary(path: &Path) -> Option<(Vec<String>, Vec<Vec<String>>)> {
    let text = fs::read_to_string(path).ok()?;
    let mut rows = parse_csv(&text);
    if rows.len() < 2 {
        return None;
    }
    rows.remove(0); // header
    let mut sizes: Vec<usize> = rows.iter().filter_map(|r| r[2].parse().ok()).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let picks = [
        sizes.first().copied()?,
        sizes.get(sizes.len() / 2).copied()?,
        sizes.last().copied()?,
    ];
    let mut schemes: Vec<String> = Vec::new();
    for r in &rows {
        if !schemes.contains(&r[1]) {
            schemes.push(r[1].clone());
        }
    }
    let header: Vec<String> = std::iter::once("scheme".to_string())
        .chain(picks.iter().map(|b| format!("slowdown @{b} B")))
        .collect();
    let body: Vec<Vec<String>> = schemes
        .iter()
        .map(|s| {
            let mut row = vec![s.clone()];
            for b in picks {
                let v = rows
                    .iter()
                    .find(|r| &r[1] == s && r[2] == b.to_string())
                    .map(|r| r[5].clone())
                    .unwrap_or_default();
                row.push(v);
            }
            row
        })
        .collect();
    Some((header, body))
}

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let dir = &opts.out_dir;
    let mut sections = Vec::new();

    for id in PlatformId::ALL {
        let fig = id.paper_figure();
        let stem = format!("fig{fig}_{}", id.name());
        let svg_path = dir.join(format!("{stem}.svg"));
        let csv_path = dir.join(format!("{stem}.csv"));
        if !svg_path.exists() {
            eprintln!("skipping {stem}: no {}", svg_path.display());
            continue;
        }
        let mut s = Section::new(
            format!("Figure {fig} — {}", id.name()),
            "Time, bandwidth, and slowdown vs message size for the eight send schemes \
             (paper layout); the table shows slowdown vs the contiguous reference.",
        );
        if let Ok(svg) = fs::read_to_string(&svg_path) {
            s.svgs.push(svg);
        }
        if let Some(hm) = figure_heatmap(&csv_path, &format!("slowdown vs reference — {}", id.name())) {
            s.svgs.push(hm);
        }
        if let Some(table) = figure_summary(&csv_path) {
            s.tables.push(table);
        }
        sections.push(s);

        // Guideline violations for this platform's sweep, if the
        // figures run wrote them (guidelines_<stem>.csv).
        let gpath = dir.join(format!("guidelines_{stem}.csv"));
        if let Some((header, rows)) = load_csv_table(&gpath, 200) {
            let mut g = Section::new(
                format!("Guideline violations — {}", id.name()),
                "Hunold-style self-consistency guidelines checked over the measured \
                 sweep: derived-vs-pack, subarray-vs-vector agreement, and the \
                 contiguous reference floor. An empty table means every guideline \
                 held within tolerance.",
            );
            if rows.is_empty() {
                let width = header.len();
                let mut none = vec![String::new(); width];
                if let Some(first) = none.first_mut() {
                    *first = "(none)".to_string();
                }
                g.tables.push((header, vec![none]));
            } else {
                g.tables.push((header, rows));
            }
            sections.push(g);
        }
    }

    // ddtbench application-kernel sweeps, one figure per kernel x platform.
    for id in PlatformId::ALL {
        for kernel in AppKernel::ALL {
            let stem = format!("ddtbench_{}_{}", kernel.key(), id.name());
            let svg_path = dir.join(format!("{stem}.svg"));
            let csv_path = dir.join(format!("{stem}.csv"));
            if !svg_path.exists() {
                continue;
            }
            let mut s = Section::new(
                format!("ddtbench: {} — {}", kernel.label(), id.name()),
                "Application access pattern ported from ddtbench, measured under the \
                 contiguous reference, explicit pack, derived-datatype send, and \
                 pack-then-send schemes.",
            );
            if let Ok(svg) = fs::read_to_string(&svg_path) {
                s.svgs.push(svg);
            }
            if let Some(table) = figure_summary(&csv_path) {
                s.tables.push(table);
            }
            let gpath = dir.join(format!("guidelines_{stem}.csv"));
            if let Some((header, rows)) = load_csv_table(&gpath, 200) {
                if !rows.is_empty() {
                    s.tables.push((header, rows));
                }
            }
            sections.push(s);
        }
    }

    for (file, heading, intro) in [
        ("eager_limit.csv", "§4.5 Eager limit", "Per-byte times bracketing each platform's eager limit."),
        ("cache_flush.csv", "§4.6 Cache flushing", "Flushed vs warm ping-pong times at intermediate sizes."),
        ("spacing.csv", "§4.7 Irregular spacing", "Regular stride-2 vs randomly-spaced indexed types."),
        ("blocksize.csv", "§4.7 Block size", "Vector blocklength sweep at fixed payload."),
        ("procs_per_node.csv", "§4.7 Processes per node", "Simultaneous ping-pong pairs."),
        ("cost_table.csv", "§2 Cost model", "Measured slowdowns vs the paper's analytical constants."),
    ] {
        let path = dir.join(file);
        if let Some(table) = load_csv_table(&path, 400) {
            let mut s = Section::new(heading, intro);
            s.tables.push(table);
            sections.push(s);
        }
    }

    if sections.is_empty() {
        eprintln!(
            "no artifacts in {} — run the `all` binary first",
            dir.display()
        );
        std::process::exit(1);
    }

    let html = render_page(
        "Performance of MPI Sends of Non-Contiguous Data — reproduction",
        "Every figure and side experiment of Eijkhout's study, regenerated on the \
         nonctg simulated platforms. See EXPERIMENTS.md for the paper-vs-measured \
         discussion.",
        &sections,
    );
    let out = dir.join("index.html");
    fs::write(&out, html).expect("write index.html");
    println!("wrote {}", out.display());
}
