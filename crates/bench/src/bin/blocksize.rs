//! §4.7(2) — block size.
//!
//! "Types with larger block sizes may perform better due to higher cache
//! line utilization in the read." Sweeps the vector blocklength at fixed
//! payload (stride = 2x blocklength throughout, so density is constant)
//! and reports the vector-type send time.

use nonctg_bench::Options;
use nonctg_report::{fmt_bytes, fmt_time, Table};
use nonctg_schemes::{run_scheme, PingPongConfig, Scheme, Workload};

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&opts.out_dir).expect("out dir");
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let blocklens = [1usize, 2, 4, 8, 16, 32, 64, 256];
    let payload = 1usize << 22; // 4 MiB

    for platform in opts.platforms() {
        println!(
            "== block size sweep on {} ({} payload, stride = 2 x blocklen) ==",
            platform.id,
            fmt_bytes(payload)
        );
        let mut t = Table::new(["blocklen (f64)", "time", "vs blocklen 1"]);
        let cfg = PingPongConfig { reps: opts.reps.min(10), ..PingPongConfig::default() }
            .adaptive(payload);
        let mut base = f64::NAN;
        for &bl in &blocklens {
            let w = Workload::blocked(payload / Workload::ELEM, bl);
            let time = run_scheme(&platform, Scheme::VectorType, &w, &cfg).time();
            if bl == 1 {
                base = time;
            }
            t.row([
                bl.to_string(),
                fmt_time(time),
                format!("{:.2}x", time / base),
            ]);
            csv_rows.push(vec![
                platform.id.name().into(),
                bl.to_string(),
                w.msg_bytes().to_string(),
                format!("{:.9e}", time),
                format!("{:.4}", time / base),
            ]);
        }
        println!("{}", t.render());
        println!("  (paper: larger blocks perform better — higher cache line utilization)\n");
    }

    let csv = nonctg_report::csv::to_csv(
        &["platform", "blocklen", "payload_bytes", "time_s", "vs_blocklen1"],
        &csv_rows,
    );
    let path = opts.out_dir.join("blocksize.csv");
    std::fs::write(&path, csv).expect("write csv");
    eprintln!("wrote {}", path.display());
}
