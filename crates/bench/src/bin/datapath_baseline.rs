//! Baseline wall-clock numbers for the pipelined datapath, recorded as
//! `BENCH_datapath.json`.
//!
//! Three experiments. The first two compare wall-clock with virtual-time
//! output proven identical elsewhere (`chunk_props`,
//! `sharded_sweep_matches_sequential_bit_for_bit`); the third calibrates
//! the adaptive engine selector against the model:
//!
//! 1. A 2^27-byte strided-vector ping-pong, monolithic vs. chunked
//!    rendezvous — the chunked path overlaps sender-side packing of chunk
//!    k+1 with receiver-side in-place unpacking of chunk k.
//! 2. A reduced scheme sweep, serial vs. four statically-partitioned
//!    shards on concurrent rank pairs.
//! 3. Per-platform pack-vs-iovec virtual-time crossover: a 900-region
//!    rendezvous send at increasing region lengths, forced through each
//!    engine, locating the region size where zero-copy iovec overtakes
//!    the staged pack. The selector's seeded `CrossoverTable` must agree
//!    with the measured winner at every decisive point (the run aborts
//!    if it doesn't), and the measured crossover is recorded so a drift
//!    of the cost model away from the seeded tables is visible.
//!
//! Speedups in 1–2 depend on host parallelism: with a single hardware
//! thread the overlap cannot pay and the recorded ratio hovers near (or
//! below) 1. The JSON records `host_threads` so a reader can tell.
//! Experiment 3 is virtual-time only and host-independent.
//!
//! Usage: `datapath_baseline [OUT.json]` (default `BENCH_datapath.json`).

use std::time::Instant;

use nonctg_core::selector::CrossoverTable;
use nonctg_core::Universe;
use nonctg_datatype::{as_bytes, Datatype};
use nonctg_schemes::{run_sweep, run_sweep_sharded, PingPongConfig, Scheme, SweepConfig};
use nonctg_simnet::{Datapath, Platform};

const PING_BYTES: usize = 1 << 27;
const SWEEP_SHARDS: usize = 4;
/// Region count of the crossover probe: under the iovec cap, and large
/// enough that every probed length is a rendezvous message everywhere.
const XOVER_REGIONS: usize = 900;
/// Region lengths (bytes) the crossover probe visits, straddling every
/// platform's seeded `iov_min_region_bytes`.
const XOVER_LENS: [usize; 8] = [96, 128, 160, 192, 256, 512, 1024, 4096];
/// Points whose engines differ by less than this are considered a tie
/// for the agreement check (the crossover itself is a near-tie).
const XOVER_TIE: f64 = 0.10;

/// Wall seconds for `reps` strided rendezvous pings in one universe.
fn pingpong_wall(platform: &Platform, bytes: usize, reps: usize) -> f64 {
    let elems = bytes / 8;
    let t0 = Instant::now();
    Universe::run_pair(platform.clone(), move |comm| {
        if comm.rank() == 0 {
            let src = vec![1.0f64; 2 * elems];
            let t = Datatype::vector(elems, 1, 2, &Datatype::f64()).unwrap().commit();
            let mut ack = [0.0f64; 0];
            for _ in 0..reps {
                comm.send(as_bytes(&src), 0, &t, 1, 1, 1).unwrap();
                comm.recv_slice(&mut ack, Some(1), Some(2)).unwrap();
            }
        } else {
            let mut dst = vec![0.0f64; elems];
            for _ in 0..reps {
                comm.recv_slice(&mut dst, Some(0), Some(1)).unwrap();
                comm.send_slice::<f64>(&[], 0, 2).unwrap();
            }
        }
        comm.wtime()
    });
    t0.elapsed().as_secs_f64()
}

/// Best of two timed runs (first run also warms the page cache / pools).
fn best_of_two(mut f: impl FnMut() -> f64) -> f64 {
    f().min(f())
}

/// Virtual seconds (max over ranks) of one strided byte-vector send
/// 0 → 1 with the given forced engine, jitter-free.
fn strided_virtual(platform: &Platform, engine: Datapath, count: usize, region: usize) -> f64 {
    let mut p = platform.clone().with_datapath(engine);
    p.jitter_sigma = 0.0;
    let stride = 2 * region;
    let src_len = (count - 1) * stride + region;
    let t = Datatype::vector(count, region, stride as i64, &Datatype::byte()).unwrap().commit();
    let (a, b) = Universe::run_pair(p, move |comm| {
        if comm.rank() == 0 {
            let src: Vec<u8> = vec![0x5A; src_len];
            comm.send(&src, 0, &t, 1, 1, 0).unwrap();
        } else {
            let mut dst = vec![0u8; src_len];
            comm.recv(&mut dst, 0, &t, 1, Some(0), Some(0)).unwrap();
        }
        comm.wtime()
    });
    a.max(b)
}

/// One probed point of the crossover sweep.
struct XoverPoint {
    region: usize,
    pack_s: f64,
    iov_s: f64,
    selected: Datapath,
}

/// Experiment 3 for one platform: probe the pack/iovec crossover, check
/// the selector agrees with every decisive measurement, and return the
/// probed points plus the measured crossover region length (first length
/// where iovec wins; 0 if it never does).
fn crossover_probe(platform: &Platform) -> (Vec<XoverPoint>, usize) {
    let mut points = Vec::new();
    let mut measured = 0usize;
    for &region in &XOVER_LENS {
        let pack_s = strided_virtual(platform, Datapath::Pack, XOVER_REGIONS, region);
        let iov_s = strided_virtual(platform, Datapath::Iov, XOVER_REGIONS, region);
        let bytes = (XOVER_REGIONS * region) as u64;
        let selected =
            nonctg_core::selector::choose(platform.id, bytes, Some(XOVER_REGIONS as u64));
        if measured == 0 && iov_s < pack_s {
            measured = region;
        }
        let gap = (pack_s - iov_s).abs() / pack_s.min(iov_s);
        if gap > XOVER_TIE {
            let winner = if iov_s < pack_s { Datapath::Iov } else { Datapath::Pack };
            assert_eq!(
                selected,
                winner,
                "{}: selector picked {} but {} wins at region={region} \
                 (pack {pack_s:.3e}s, iov {iov_s:.3e}s)",
                platform.id.name(),
                selected.name(),
                winner.name(),
            );
        }
        points.push(XoverPoint { region, pack_s, iov_s, selected });
    }
    (points, measured)
}

fn sweep_config() -> SweepConfig {
    SweepConfig {
        schemes: vec![Scheme::Reference, Scheme::Copying, Scheme::VectorType, Scheme::PackingVector],
        min_bytes: 1 << 10,
        max_bytes: 1 << 20,
        step: 4,
        base: PingPongConfig { reps: 5, flush: false, flush_bytes: 0, verify: false },
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_datapath.json".into());
    let platform = Platform::skx_impi();

    // -- experiment 1: monolithic vs chunked 2^27-byte vector ping-pong --
    let mono = platform.clone().without_pipeline();
    let mono_s = best_of_two(|| pingpong_wall(&mono, PING_BYTES, 3));
    let chunk_s = best_of_two(|| pingpong_wall(&platform, PING_BYTES, 3));
    let ping_speedup = mono_s / chunk_s;
    println!(
        "pingpong 2^27: monolithic {mono_s:.3}s  chunked {chunk_s:.3}s  speedup {ping_speedup:.2}x"
    );

    // -- experiment 2: serial vs sharded sweep ------------------------
    let cfg = sweep_config();
    let t0 = Instant::now();
    let serial = run_sweep(&platform, &cfg);
    let serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let sharded = run_sweep_sharded(&platform, &cfg, SWEEP_SHARDS);
    let sharded_s = t0.elapsed().as_secs_f64();
    let sweep_speedup = serial_s / sharded_s;
    println!(
        "sweep ({} points): serial {serial_s:.3}s  {SWEEP_SHARDS} shards {sharded_s:.3}s  speedup {sweep_speedup:.2}x",
        serial.points.len()
    );

    // The sharded run must be bit-identical to the serial one; this bin
    // doubles as a cheap end-to-end check of that invariant.
    assert_eq!(serial.points.len(), sharded.points.len(), "sharded sweep dropped points");
    for (a, b) in serial.points.iter().zip(&sharded.points) {
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(a.msg_bytes, b.msg_bytes);
        assert_eq!(a.time.to_bits(), b.time.to_bits(), "virtual time diverged");
    }
    println!("sharded sweep bit-identical to serial: ok");

    // On a 1-thread host the sharded path degenerates to the caller
    // running every slice inline, so its overhead over serial must be
    // noise-level. (Multi-core speedup is asserted in CI, where cores
    // exist; 0.95 leaves room for timer jitter on shared runners.)
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if host_threads == 1 {
        assert!(
            sweep_speedup >= 0.95,
            "sharded sweep {sweep_speedup:.3}x on a 1-thread host: shard overhead regressed"
        );
    }

    // -- experiment 3: pack vs iovec crossover, every platform --------
    let mut xover_json = String::new();
    for p in Platform::all() {
        let seeded = CrossoverTable::seeded(p.id);
        let (points, measured) = crossover_probe(&p);
        println!(
            "{}: iovec overtakes pack at region >= {} bytes (seeded crossover {})",
            p.id.name(),
            measured,
            seeded.iov_min_region_bytes
        );
        // The seeded table was calibrated from this very probe; a model
        // change that moves the crossover past this band must re-seed.
        assert!(
            measured as u64 >= seeded.iov_min_region_bytes / 2
                && measured as u64 <= seeded.iov_min_region_bytes * 2,
            "{}: measured crossover {measured} drifted from seeded {}",
            p.id.name(),
            seeded.iov_min_region_bytes
        );
        let rows: Vec<String> = points
            .iter()
            .map(|x| {
                format!(
                    "      {{\"region_bytes\": {}, \"pack_s\": {:.6e}, \"iov_s\": {:.6e}, \
                     \"selected\": \"{}\"}}",
                    x.region,
                    x.pack_s,
                    x.iov_s,
                    x.selected.name()
                )
            })
            .collect();
        if !xover_json.is_empty() {
            xover_json.push_str(",\n");
        }
        xover_json.push_str(&format!(
            "    {{\"platform\": \"{}\", \"regions\": {XOVER_REGIONS}, \
             \"seeded_min_region_bytes\": {}, \"measured_crossover_bytes\": {}, \
             \"selector_agrees\": true, \"points\": [\n{}\n    ]}}",
            p.id.name(),
            seeded.iov_min_region_bytes,
            measured,
            rows.join(",\n")
        ));
    }
    println!("selector agrees with measured winner at every decisive point: ok");

    let json = format!(
        "{{\n  \"bench\": \"datapath_baseline\",\n  \"host_threads\": {host_threads},\n  \
         \"pingpong\": {{\"bytes\": {PING_BYTES}, \"reps\": 3, \"monolithic_s\": {mono_s:.6e}, \
         \"chunked_s\": {chunk_s:.6e}, \"speedup\": {ping_speedup:.3}}},\n  \
         \"sweep\": {{\"points\": {}, \"shards\": {SWEEP_SHARDS}, \"serial_s\": {serial_s:.6e}, \
         \"sharded_s\": {sharded_s:.6e}, \"speedup\": {sweep_speedup:.3}, \"bit_identical\": true}},\n  \
         \"iov_crossover\": [\n{xover_json}\n  ]\n}}\n",
        serial.points.len()
    );
    let hist = nonctg_bench::history::write_bench_json(
        "datapath",
        std::path::Path::new(&out_path),
        &json,
    )
    .expect("write baseline json");
    println!("wrote {out_path} (history entry {})", hist.display());
}
