//! Baseline wall-clock numbers for the pipelined datapath, recorded as
//! `BENCH_datapath.json`.
//!
//! Two experiments, both with virtual-time output proven identical
//! elsewhere (`chunk_props`, `sharded_sweep_matches_sequential_bit_for_bit`):
//!
//! 1. A 2^27-byte strided-vector ping-pong, monolithic vs. chunked
//!    rendezvous — the chunked path overlaps sender-side packing of chunk
//!    k+1 with receiver-side in-place unpacking of chunk k.
//! 2. A reduced scheme sweep, serial vs. four statically-partitioned
//!    shards on concurrent rank pairs.
//!
//! Speedups depend on host parallelism: with a single hardware thread the
//! overlap cannot pay and the recorded ratio hovers near (or below) 1.
//! The JSON records `host_threads` so a reader can tell.
//!
//! Usage: `datapath_baseline [OUT.json]` (default `BENCH_datapath.json`).

use std::time::Instant;

use nonctg_core::Universe;
use nonctg_datatype::{as_bytes, Datatype};
use nonctg_schemes::{run_sweep, run_sweep_sharded, PingPongConfig, Scheme, SweepConfig};
use nonctg_simnet::Platform;

const PING_BYTES: usize = 1 << 27;
const SWEEP_SHARDS: usize = 4;

/// Wall seconds for `reps` strided rendezvous pings in one universe.
fn pingpong_wall(platform: &Platform, bytes: usize, reps: usize) -> f64 {
    let elems = bytes / 8;
    let t0 = Instant::now();
    Universe::run_pair(platform.clone(), move |comm| {
        if comm.rank() == 0 {
            let src = vec![1.0f64; 2 * elems];
            let t = Datatype::vector(elems, 1, 2, &Datatype::f64()).unwrap().commit();
            let mut ack = [0.0f64; 0];
            for _ in 0..reps {
                comm.send(as_bytes(&src), 0, &t, 1, 1, 1).unwrap();
                comm.recv_slice(&mut ack, Some(1), Some(2)).unwrap();
            }
        } else {
            let mut dst = vec![0.0f64; elems];
            for _ in 0..reps {
                comm.recv_slice(&mut dst, Some(0), Some(1)).unwrap();
                comm.send_slice::<f64>(&[], 0, 2).unwrap();
            }
        }
        comm.wtime()
    });
    t0.elapsed().as_secs_f64()
}

/// Best of two timed runs (first run also warms the page cache / pools).
fn best_of_two(mut f: impl FnMut() -> f64) -> f64 {
    f().min(f())
}

fn sweep_config() -> SweepConfig {
    SweepConfig {
        schemes: vec![Scheme::Reference, Scheme::Copying, Scheme::VectorType, Scheme::PackingVector],
        min_bytes: 1 << 10,
        max_bytes: 1 << 20,
        step: 4,
        base: PingPongConfig { reps: 5, flush: false, flush_bytes: 0, verify: false },
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_datapath.json".into());
    let platform = Platform::skx_impi();

    // -- experiment 1: monolithic vs chunked 2^27-byte vector ping-pong --
    let mono = platform.clone().without_pipeline();
    let mono_s = best_of_two(|| pingpong_wall(&mono, PING_BYTES, 3));
    let chunk_s = best_of_two(|| pingpong_wall(&platform, PING_BYTES, 3));
    let ping_speedup = mono_s / chunk_s;
    println!(
        "pingpong 2^27: monolithic {mono_s:.3}s  chunked {chunk_s:.3}s  speedup {ping_speedup:.2}x"
    );

    // -- experiment 2: serial vs sharded sweep ------------------------
    let cfg = sweep_config();
    let t0 = Instant::now();
    let serial = run_sweep(&platform, &cfg);
    let serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let sharded = run_sweep_sharded(&platform, &cfg, SWEEP_SHARDS);
    let sharded_s = t0.elapsed().as_secs_f64();
    let sweep_speedup = serial_s / sharded_s;
    println!(
        "sweep ({} points): serial {serial_s:.3}s  {SWEEP_SHARDS} shards {sharded_s:.3}s  speedup {sweep_speedup:.2}x",
        serial.points.len()
    );

    // The sharded run must be bit-identical to the serial one; this bin
    // doubles as a cheap end-to-end check of that invariant.
    assert_eq!(serial.points.len(), sharded.points.len(), "sharded sweep dropped points");
    for (a, b) in serial.points.iter().zip(&sharded.points) {
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(a.msg_bytes, b.msg_bytes);
        assert_eq!(a.time.to_bits(), b.time.to_bits(), "virtual time diverged");
    }
    println!("sharded sweep bit-identical to serial: ok");

    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"datapath_baseline\",\n  \"host_threads\": {host_threads},\n  \
         \"pingpong\": {{\"bytes\": {PING_BYTES}, \"reps\": 3, \"monolithic_s\": {mono_s:.6e}, \
         \"chunked_s\": {chunk_s:.6e}, \"speedup\": {ping_speedup:.3}}},\n  \
         \"sweep\": {{\"points\": {}, \"shards\": {SWEEP_SHARDS}, \"serial_s\": {serial_s:.6e}, \
         \"sharded_s\": {sharded_s:.6e}, \"speedup\": {sweep_speedup:.3}, \"bit_identical\": true}}\n}}\n",
        serial.points.len()
    );
    std::fs::write(&out_path, json).expect("write baseline json");
    println!("wrote {out_path}");
}
