//! Print the cost-model decomposition (§2 of the paper) of a send at a
//! few sizes on each platform — where the time goes for each path.
//!
//! ```text
//! cargo run --release -p nonctg-bench --bin explain -- --platform skx-impi
//! cargo run --release -p nonctg-bench --bin explain -- --phases   # measured, not modeled
//! ```
//!
//! With `--phases` the analytic table is followed by a *measured* phase
//! table: every scheme is run with tracing on and its ping-pong time is
//! attributed to pack / transfer / sync / unpack from the event stream.

use nonctg_bench::Options;
use nonctg_report::{fmt_bytes, fmt_time, Table};
use nonctg_schemes::{run_scheme_phases, PingPongConfig, Scheme, Workload};
use nonctg_simnet::{Access, SendPath};

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let access = Access::Strided { blocklen: 8, stride: 16 };
    let sizes = [4usize << 10, 1 << 20, 64 << 20, 256 << 20];
    let paths = [
        SendPath::Contiguous,
        SendPath::DerivedType,
        SendPath::Buffered,
        SendPath::OneSidedPut,
    ];

    for platform in opts.platforms() {
        println!("== cost decomposition on {} (stride-2 f64 gather) ==", platform.id);
        let mut t = Table::new([
            "size", "path", "total", "overhead", "staging", "extra", "latency", "wire", "x wire",
        ]);
        for &bytes in &sizes {
            for path in paths {
                let b = platform.explain_send(path, bytes as u64, &access, false);
                let us = |x: f64| format!("{:.1}", x * 1e6);
                t.row([
                    fmt_bytes(bytes),
                    format!("{path:?}"),
                    us(b.total()),
                    us(b.overhead),
                    us(b.staging),
                    us(b.extra),
                    us(b.latency),
                    us(b.wire),
                    format!("{:.2}", b.slowdown_vs_wire()),
                ]);
            }
        }
        println!("{}", t.render());
        println!("  (all columns in microseconds; 'x wire' = total over latency+wire,");
        println!("   the paper's proportionality constant)\n");

        if opts.phases {
            let cfg = PingPongConfig { reps: opts.reps, verify: !opts.no_verify, ..Default::default() };
            for &bytes in &[4usize << 10, 1 << 20] {
                let w = Workload::every_other(bytes / Workload::ELEM);
                println!(
                    "== measured phases on {} at {} (traced ping-pong) ==",
                    platform.id,
                    fmt_bytes(w.msg_bytes())
                );
                let mut t =
                    Table::new(["scheme", "total", "pack", "transfer", "sync", "unpack"]);
                for scheme in Scheme::ALL {
                    match run_scheme_phases(&platform, scheme, &w, &cfg) {
                        Ok(p) => {
                            t.row([
                                scheme.label().to_string(),
                                fmt_time(p.time),
                                fmt_time(p.phases.pack),
                                fmt_time(p.phases.transfer),
                                fmt_time(p.phases.sync),
                                fmt_time(p.phases.unpack),
                            ]);
                        }
                        Err(e) => {
                            t.row([
                                scheme.label().to_string(),
                                format!("failed: {e}"),
                                String::new(),
                                String::new(),
                                String::new(),
                                String::new(),
                            ]);
                        }
                    }
                }
                println!("{}", t.render());
            }
        }
    }
}
