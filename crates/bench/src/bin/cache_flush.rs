//! §4.6 — cache-flush ablation.
//!
//! The paper flushes the caches between ping-pongs by rewriting a 50 MB
//! array; in unreported tests, *not* flushing clearly helped intermediate
//! message sizes. This binary runs the copying and vector-type schemes
//! with and without the flush across intermediate sizes and reports the
//! warm-over-cold speedup.

use nonctg_bench::Options;
use nonctg_report::{fmt_bytes, fmt_time, Table};
use nonctg_schemes::{run_scheme, PingPongConfig, Scheme, Workload};

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&opts.out_dir).expect("out dir");
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let schemes = [Scheme::Copying, Scheme::VectorType, Scheme::PackingVector];
    let sizes: Vec<usize> = (14..=24).step_by(2).map(|e| 1usize << e).collect();

    for platform in opts.platforms() {
        println!(
            "== cache flush ablation on {} (LLC = {}) ==",
            platform.id,
            fmt_bytes(platform.mem.cache_size as usize)
        );
        let mut t = Table::new(["size", "scheme", "flushed", "no flush", "speedup"]);
        for &bytes in &sizes {
            let w = Workload::every_other(bytes / Workload::ELEM);
            let base = PingPongConfig { reps: opts.reps.min(10), ..PingPongConfig::default() }
                .adaptive(bytes);
            let warm_cfg = PingPongConfig { flush: false, ..base.clone() };
            for scheme in schemes {
                let cold = run_scheme(&platform, scheme, &w, &base);
                let warm = run_scheme(&platform, scheme, &w, &warm_cfg);
                let speedup = cold.time() / warm.time();
                t.row([
                    fmt_bytes(w.msg_bytes()),
                    scheme.label().to_string(),
                    fmt_time(cold.time()),
                    fmt_time(warm.time()),
                    format!("{speedup:.2}x"),
                ]);
                csv_rows.push(vec![
                    platform.id.name().into(),
                    scheme.key().into(),
                    w.msg_bytes().to_string(),
                    format!("{:.9e}", cold.time()),
                    format!("{:.9e}", warm.time()),
                    format!("{speedup:.4}"),
                ]);
            }
        }
        println!("{}", t.render());
        println!("  (paper: not flushing has a clear positive effect on intermediate sizes,\n   and none once the working set exceeds the cache)\n");
    }

    let csv = nonctg_report::csv::to_csv(
        &["platform", "scheme", "msg_bytes", "flushed_s", "warm_s", "speedup"],
        &csv_rows,
    );
    let path = opts.out_dir.join("cache_flush.csv");
    std::fs::write(&path, csv).expect("write csv");
    eprintln!("wrote {}", path.display());
}
