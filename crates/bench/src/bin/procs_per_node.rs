//! §4.7 — all processes per node communicating.
//!
//! The figures use exactly one communicating process per node; the paper's
//! unreported check found no degradation when every process on a node
//! communicates (sometimes slightly higher aggregate bandwidth). This
//! binary runs 1, 4, and 8 simultaneous ping-pong pairs and compares pair
//! 0's time (the model has no NIC-contention term, matching the paper's
//! "no degradation" observation — see DESIGN.md).

use nonctg_bench::Options;
use nonctg_report::{fmt_bytes, fmt_time, Table};
use nonctg_schemes::{run_scheme_pairs, PingPongConfig, Scheme, Workload};

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&opts.out_dir).expect("out dir");
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let sizes = [1usize << 14, 1 << 20];
    let pair_counts = [1usize, 4, 8];

    for platform in opts.platforms() {
        println!("== processes per node on {} ==", platform.id);
        let mut t = Table::new(["size", "pairs", "time (pair 0)", "vs 1 pair"]);
        for &bytes in &sizes {
            let w = Workload::every_other(bytes / Workload::ELEM);
            let cfg = PingPongConfig { reps: opts.reps.min(10), ..PingPongConfig::default() }
                .adaptive(bytes);
            let mut base = f64::NAN;
            for &pairs in &pair_counts {
                let time =
                    run_scheme_pairs(&platform, Scheme::VectorType, &w, &cfg, pairs).time();
                if pairs == 1 {
                    base = time;
                }
                t.row([
                    fmt_bytes(bytes),
                    pairs.to_string(),
                    fmt_time(time),
                    format!("{:.3}x", time / base),
                ]);
                csv_rows.push(vec![
                    platform.id.name().into(),
                    bytes.to_string(),
                    pairs.to_string(),
                    format!("{:.9e}", time),
                    format!("{:.4}", time / base),
                ]);
            }
        }
        println!("{}", t.render());
        println!("  (paper: no degradation from all processes communicating)\n");
    }

    let csv = nonctg_report::csv::to_csv(
        &["platform", "msg_bytes", "pairs", "time_s", "vs_one_pair"],
        &csv_rows,
    );
    let path = opts.out_dir.join("procs_per_node.csv");
    std::fs::write(&path, csv).expect("write csv");
    eprintln!("wrote {}", path.display());
}
