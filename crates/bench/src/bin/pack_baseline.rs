//! Baseline wall-clock pack throughput, recorded as `BENCH_pack.json`.
//!
//! Measures the public (plan-cached) pack engine on the three
//! non-contiguous shapes the paper sweeps — strided vector, 2-D
//! subarray, and a mixed struct — at 1 KB, 1 MB and 64 MB packed
//! payloads, and writes bytes/sec per shape so later changes to the
//! engine can be compared against a committed reference point.
//!
//! Each entry also carries a roofline attribution: a contiguous memcpy
//! of the same packed payload is timed alongside, and `roofline_pct`
//! records what share of that attainable copy bandwidth the gathering
//! kernel achieved. The document also records the selected SIMD kernel
//! tier and streaming-store threshold, and a `threaded` section timing
//! the 64 MB strided pack serial vs. `pack_threads()`-wide (the CI
//! multi-core job asserts that speedup exceeds 1). It is written
//! through the bench-history helper, so every run is also appended to
//! `BENCH_history/` (or `$NONCTG_BENCH_HISTORY`) for the regression
//! sentinel.
//!
//! Usage: `pack_baseline [OUT.json]` (default `BENCH_pack.json`).

use nonctg_datatype::{as_bytes, pack_into, pack_size, ArrayOrder, Datatype, PackPlan};
use std::hint::black_box;
use std::time::Instant;

struct Case {
    shape: &'static str,
    dtype: Datatype,
    count: usize,
    src: Vec<u8>,
}

fn strided(packed: usize) -> Case {
    let n = packed / 8;
    let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
    Case {
        shape: "strided",
        dtype: Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit(),
        count: 1,
        src: as_bytes(&src).to_vec(),
    }
}

fn subarray(packed: usize) -> Case {
    // Half the columns of a rows x 128 f64 matrix: packed = rows * 64 * 8.
    let rows = (packed / 512).max(1);
    let src: Vec<f64> = (0..rows * 128).map(|i| i as f64).collect();
    Case {
        shape: "subarray",
        dtype: Datatype::subarray(&[rows, 128], &[rows, 64], &[0, 32], ArrayOrder::C, &Datatype::f64())
            .unwrap()
            .commit(),
        count: 1,
        src: as_bytes(&src).to_vec(),
    }
}

fn structure(packed: usize) -> Case {
    // One i32 + one f64 per instance: 12 packed bytes out of a 16-byte extent.
    let count = (packed / 12).max(1);
    let src: Vec<u8> = (0..count * 16).map(|i| i as u8).collect();
    Case {
        shape: "struct",
        dtype: Datatype::structure(&[(1, 0, Datatype::i32()), (1, 8, Datatype::f64())])
            .unwrap()
            .commit(),
        count,
        src,
    }
}

/// Mean seconds per pack over enough repetitions to fill ~`target` s of
/// wall-clock.
fn timed_block(case: &Case, out: &mut [u8], target: f64) -> f64 {
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(pack_into(black_box(&case.src), 0, &case.dtype, case.count, out).unwrap());
        }
        let secs = t0.elapsed().as_secs_f64();
        if secs >= target || iters >= 1 << 20 {
            return secs / iters as f64;
        }
        iters = (iters * 2).max((iters as f64 * 1.1 * target / secs.max(1e-9)) as usize);
    }
}

/// Seconds per pack: the minimum of three ~0.1 s timed blocks, after
/// one untimed warm-up (which also compiles the plan). The minimum is
/// far less sensitive to scheduler noise than a single long mean, which
/// matters now that the regression sentinel compares runs across time.
fn measure(case: &Case, out: &mut [u8]) -> f64 {
    pack_into(&case.src, 0, &case.dtype, case.count, out).unwrap();
    (0..3)
        .map(|_| timed_block(case, out, 0.1))
        .fold(f64::INFINITY, f64::min)
}

/// Min-of-3 seconds per call of `f` (same protocol as [`measure`]).
fn measure_fn(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    (0..3)
        .map(|_| {
            let mut iters = 1usize;
            loop {
                let t0 = Instant::now();
                for _ in 0..iters {
                    f();
                }
                let secs = t0.elapsed().as_secs_f64();
                if secs >= 0.1 || iters >= 1 << 20 {
                    break secs / iters as f64;
                }
                iters = (iters * 2).max((iters as f64 * 1.1 * 0.1 / secs.max(1e-9)) as usize);
            }
        })
        .fold(f64::INFINITY, f64::min)
}

/// Serial-vs-threaded comparison on the 64 MB strided shape through the
/// plan-level API (the public path picks its own thread count); the CI
/// multi-core job asserts `speedup > 1` under `NONCTG_PACK_THREADS=4`.
fn threaded_section() -> String {
    let threads = nonctg_datatype::pack_threads();
    let case = strided(64 << 20);
    let packed = pack_size(&case.dtype, case.count).unwrap();
    let plan = PackPlan::compile(&case.dtype, case.count).expect("strided vector is plannable");
    let mut out = vec![0u8; packed];
    let serial_s = measure_fn(|| {
        black_box(plan.pack_into_with(black_box(&case.src), 0, &mut out, 1).unwrap());
    });
    let threaded_s = measure_fn(|| {
        black_box(plan.pack_into_with(black_box(&case.src), 0, &mut out, threads).unwrap());
    });
    let speedup = serial_s / threaded_s;
    println!(
        "threaded strided 64MB: serial {serial_s:.3e}s  {threads} threads {threaded_s:.3e}s  \
         speedup {speedup:.2}x"
    );
    format!(
        "{{\"threads\": {threads}, \"shape\": \"strided\", \"payload\": \"64MB\", \
         \"serial_s\": {serial_s:.6e}, \"threaded_s\": {threaded_s:.6e}, \
         \"speedup\": {speedup:.3}}}"
    )
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pack.json".into());
    let sizes = [("1KB", 1usize << 10), ("1MB", 1 << 20), ("64MB", 64 << 20)];
    let mut entries: Vec<String> = Vec::new();

    // Start the plan-cache counters from zero so the recorded stats
    // describe exactly this run.
    nonctg_datatype::reset_cache_stats();

    for (label, bytes) in sizes {
        for case in [strided(bytes), subarray(bytes), structure(bytes)] {
            let packed = pack_size(&case.dtype, case.count).unwrap();
            let mut out = vec![0u8; packed];
            let secs = measure(&case, &mut out);
            let bps = packed as f64 / secs;
            let memcpy_bps = nonctg_bench::memcpy_reference(packed, 0.2);
            let roofline_pct = 100.0 * bps / memcpy_bps;
            println!(
                "{:>8} {:>5}  {:>12} B packed  {:>10.3e} s/pack  {:>9.3} MB/s  {:>5.1}% of memcpy",
                case.shape,
                label,
                packed,
                secs,
                bps / 1e6,
                roofline_pct
            );
            entries.push(format!(
                "    {{\"shape\": \"{}\", \"payload\": \"{}\", \"packed_bytes\": {}, \"seconds_per_pack\": {:.6e}, \"bytes_per_sec\": {:.6e}, \"memcpy_bytes_per_sec\": {:.6e}, \"roofline_pct\": {:.2}}}",
                case.shape, label, packed, secs, bps, memcpy_bps, roofline_pct
            ));
        }
    }

    let threaded = threaded_section();
    let cache = nonctg_datatype::cache_stats();
    let json = format!(
        "{{\n  \"bench\": \"pack_baseline\",\n  \"engine\": \"compiled-plan\",\n  \"threads\": {},\n  \"simd\": \"{}\",\n  \"llc_bytes\": {},\n  \"plan_cache\": {{\"size\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"compile_s\": {:.6e}}},\n  \"threaded\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        nonctg_datatype::pack_threads(),
        nonctg_datatype::simd_tier().name(),
        nonctg_datatype::llc_threshold(),
        cache.size,
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.compile_nanos as f64 * 1e-9,
        threaded,
        entries.join(",\n")
    );
    let hist =
        nonctg_bench::history::write_bench_json("pack", std::path::Path::new(&out_path), &json)
            .expect("write baseline json");
    println!("wrote {out_path} (history entry {})", hist.display());
}
