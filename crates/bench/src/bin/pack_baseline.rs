//! Baseline wall-clock pack throughput, recorded as `BENCH_pack.json`.
//!
//! Measures the public (plan-cached) pack engine on the three
//! non-contiguous shapes the paper sweeps — strided vector, 2-D
//! subarray, and a mixed struct — at 1 KB, 1 MB and 64 MB packed
//! payloads, and writes bytes/sec per shape so later changes to the
//! engine can be compared against a committed reference point.
//!
//! Usage: `pack_baseline [OUT.json]` (default `BENCH_pack.json`).

use nonctg_datatype::{as_bytes, pack_into, pack_size, ArrayOrder, Datatype};
use std::hint::black_box;
use std::time::Instant;

struct Case {
    shape: &'static str,
    dtype: Datatype,
    count: usize,
    src: Vec<u8>,
}

fn strided(packed: usize) -> Case {
    let n = packed / 8;
    let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
    Case {
        shape: "strided",
        dtype: Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit(),
        count: 1,
        src: as_bytes(&src).to_vec(),
    }
}

fn subarray(packed: usize) -> Case {
    // Half the columns of a rows x 128 f64 matrix: packed = rows * 64 * 8.
    let rows = (packed / 512).max(1);
    let src: Vec<f64> = (0..rows * 128).map(|i| i as f64).collect();
    Case {
        shape: "subarray",
        dtype: Datatype::subarray(&[rows, 128], &[rows, 64], &[0, 32], ArrayOrder::C, &Datatype::f64())
            .unwrap()
            .commit(),
        count: 1,
        src: as_bytes(&src).to_vec(),
    }
}

fn structure(packed: usize) -> Case {
    // One i32 + one f64 per instance: 12 packed bytes out of a 16-byte extent.
    let count = (packed / 12).max(1);
    let src: Vec<u8> = (0..count * 16).map(|i| i as u8).collect();
    Case {
        shape: "struct",
        dtype: Datatype::structure(&[(1, 0, Datatype::i32()), (1, 8, Datatype::f64())])
            .unwrap()
            .commit(),
        count,
        src,
    }
}

/// Mean seconds per pack over enough repetitions to fill ~0.3 s of
/// wall-clock, after one untimed warm-up (which also compiles the plan).
fn measure(case: &Case, out: &mut [u8]) -> f64 {
    pack_into(&case.src, 0, &case.dtype, case.count, out).unwrap();
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(pack_into(black_box(&case.src), 0, &case.dtype, case.count, out).unwrap());
        }
        let secs = t0.elapsed().as_secs_f64();
        if secs >= 0.3 || iters >= 1 << 20 {
            return secs / iters as f64;
        }
        iters = (iters * 2).max((iters as f64 * 0.35 / secs.max(1e-9)) as usize);
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pack.json".into());
    let sizes = [("1KB", 1usize << 10), ("1MB", 1 << 20), ("64MB", 64 << 20)];
    let mut entries: Vec<String> = Vec::new();

    // Start the plan-cache counters from zero so the recorded stats
    // describe exactly this run.
    nonctg_datatype::reset_cache_stats();

    for (label, bytes) in sizes {
        for case in [strided(bytes), subarray(bytes), structure(bytes)] {
            let packed = pack_size(&case.dtype, case.count).unwrap();
            let mut out = vec![0u8; packed];
            let secs = measure(&case, &mut out);
            let bps = packed as f64 / secs;
            println!(
                "{:>8} {:>5}  {:>12} B packed  {:>10.3e} s/pack  {:>9.3} MB/s",
                case.shape,
                label,
                packed,
                secs,
                bps / 1e6
            );
            entries.push(format!(
                "    {{\"shape\": \"{}\", \"payload\": \"{}\", \"packed_bytes\": {}, \"seconds_per_pack\": {:.6e}, \"bytes_per_sec\": {:.6e}}}",
                case.shape, label, packed, secs, bps
            ));
        }
    }

    let cache = nonctg_datatype::cache_stats();
    let json = format!(
        "{{\n  \"bench\": \"pack_baseline\",\n  \"engine\": \"compiled-plan\",\n  \"threads\": {},\n  \"plan_cache\": {{\"size\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"compile_s\": {:.6e}}},\n  \"results\": [\n{}\n  ]\n}}\n",
        nonctg_datatype::pack_threads(),
        cache.size,
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.compile_nanos as f64 * 1e-9,
        entries.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write baseline json");
    println!("wrote {out_path}");
}
