//! Compare two figure-sweep CSVs (e.g. from different commits or model
//! calibrations) and report per-scheme drift — the regression-tracking
//! companion of the figure harness.
//!
//! ```text
//! cargo run --release -p nonctg-bench --bin compare -- old/fig1.csv new/fig1.csv
//! cargo run --release -p nonctg-bench --bin compare -- a.csv b.csv --tolerance 0.1
//! cargo run --release -p nonctg-bench --bin compare -- old/phases_fig1.csv new/phases_fig1.csv --phases
//! ```
//!
//! Exits nonzero if any (scheme, size) time ratio leaves
//! `[1-tolerance, 1+tolerance]`. With `--phases` the inputs are
//! phase-attribution CSVs and every phase column (pack/transfer/sync/
//! unpack) is compared instead of just the total time.
//!
//! With `--guidelines` the inputs are `guidelines_*.csv` violation
//! tables (as written by the `figures` bin) and the comparison is
//! set-wise: any violation present in the new table but not the old is
//! a regression and the exit code is nonzero; violations that
//! disappeared are reported as fixed.

use std::collections::BTreeMap;
use std::process::ExitCode;

use nonctg_report::csv::parse_csv;
use nonctg_report::{fmt_bytes, Table};

type Key = (String, usize, &'static str); // (scheme, msg_bytes, metric column)

fn load(path: &str, metrics: &[&'static str]) -> Result<BTreeMap<Key, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut rows = parse_csv(&text);
    if rows.is_empty() {
        return Err(format!("{path}: empty"));
    }
    let header = rows.remove(0);
    let col = |name: &str| {
        header
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| format!("{path}: missing column '{name}'"))
    };
    let (c_scheme, c_bytes) = (col("scheme")?, col("msg_bytes")?);
    let c_metrics: Vec<(usize, &'static str)> =
        metrics.iter().map(|&m| col(m).map(|c| (c, m))).collect::<Result<_, _>>()?;
    let mut out = BTreeMap::new();
    for r in rows {
        let scheme = r[c_scheme].clone();
        let bytes: usize = r[c_bytes].parse().map_err(|e| format!("{path}: {e}"))?;
        for &(c, m) in &c_metrics {
            let v: f64 = r[c].parse().map_err(|e| format!("{path}: {e}"))?;
            out.insert((scheme.clone(), bytes, m), v);
        }
    }
    Ok(out)
}

/// One row of a `guidelines_*.csv` violation table, keyed by what was
/// violated and where; the ratio is carried along for display.
type GuidelineKey = (String, String, usize); // (platform, guideline, msg_bytes)

fn load_guidelines(path: &str) -> Result<BTreeMap<GuidelineKey, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut rows = parse_csv(&text);
    if rows.is_empty() {
        return Err(format!("{path}: empty"));
    }
    let header = rows.remove(0);
    let col = |name: &str| {
        header
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| format!("{path}: missing column '{name}'"))
    };
    let (c_plat, c_guide, c_bytes, c_ratio) =
        (col("platform")?, col("guideline")?, col("msg_bytes")?, col("ratio")?);
    let mut out = BTreeMap::new();
    for r in rows {
        let bytes: usize = r[c_bytes].parse().map_err(|e| format!("{path}: {e}"))?;
        let ratio: f64 = r[c_ratio].parse().map_err(|e| format!("{path}: {e}"))?;
        out.insert((r[c_plat].clone(), r[c_guide].clone(), bytes), ratio);
    }
    Ok(out)
}

/// Set-diff two violation tables: new-only rows are regressions.
fn compare_guidelines(files: &[String]) -> ExitCode {
    let (old, new) = match (load_guidelines(&files[0]), load_guidelines(&files[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut t = Table::new(["platform", "guideline", "size", "ratio", "change"]);
    let mut introduced = 0usize;
    let mut fixed = 0usize;
    for (key, &ratio) in &new {
        if !old.contains_key(key) {
            introduced += 1;
            t.row([
                key.0.clone(),
                key.1.clone(),
                fmt_bytes(key.2),
                format!("{ratio:.3}"),
                "NEW".into(),
            ]);
        }
    }
    for (key, &ratio) in &old {
        if !new.contains_key(key) {
            fixed += 1;
            t.row([
                key.0.clone(),
                key.1.clone(),
                fmt_bytes(key.2),
                format!("{ratio:.3}"),
                "fixed".into(),
            ]);
        }
    }
    println!(
        "guideline violations: {} old, {} new ({} introduced, {} fixed)",
        old.len(),
        new.len(),
        introduced,
        fixed
    );
    if introduced + fixed > 0 {
        println!("{}", t.render());
    }
    if introduced > 0 {
        return ExitCode::from(1);
    }
    println!("no new guideline violations");
    ExitCode::SUCCESS
}

const USAGE: &str = "usage: compare <old.csv> <new.csv> [--tolerance F] [--phases | --guidelines]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 0.05f64;
    let mut phases = false;
    let mut guidelines = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" | "-t" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--tolerance needs a number");
                        std::process::exit(2);
                    })
            }
            "--phases" => phases = true,
            "--guidelines" => guidelines = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            f => files.push(f.to_string()),
        }
    }
    if files.len() != 2 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if guidelines {
        return compare_guidelines(&files);
    }
    let metrics: &[&'static str] = if phases {
        &["time_s", "pack_s", "transfer_s", "sync_s", "unpack_s"]
    } else {
        &["time_s"]
    };
    let (old, new) = match (load(&files[0], metrics), load(&files[1], metrics)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let mut t = Table::new(["scheme", "size", "metric", "old", "new", "ratio", ""]);
    let mut worst: f64 = 1.0;
    let mut drifted = 0usize;
    let mut missing = 0usize;
    for (key, &t_old) in &old {
        match new.get(key) {
            None => missing += 1,
            Some(&t_new) => {
                // Phase columns can be exactly zero (e.g. sync on a
                // contiguous send); identical zeros are never drift.
                let ratio = if t_old == t_new { 1.0 } else { t_new / t_old };
                let flag = if (ratio - 1.0).abs() > tolerance { "DRIFT" } else { "" };
                if !flag.is_empty() {
                    drifted += 1;
                    if (ratio - 1.0).abs() > (worst - 1.0).abs() || !ratio.is_finite() {
                        worst = ratio;
                    }
                    t.row([
                        key.0.clone(),
                        fmt_bytes(key.1),
                        key.2.to_string(),
                        format!("{t_old:.3e}"),
                        format!("{t_new:.3e}"),
                        format!("{ratio:.3}"),
                        flag.into(),
                    ]);
                }
            }
        }
    }
    let only_new = new.keys().filter(|k| !old.contains_key(*k)).count();

    println!(
        "compared {} points (tolerance ±{:.0}%): {} drifted, {} missing from new, {} new-only",
        old.len(),
        tolerance * 100.0,
        drifted,
        missing,
        only_new
    );
    if drifted > 0 {
        println!("{}", t.render());
        println!("worst ratio: {worst:.3}");
        return ExitCode::from(1);
    }
    println!("no drift beyond tolerance");
    ExitCode::SUCCESS
}
