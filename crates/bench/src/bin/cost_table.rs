//! §2 — the cost analysis table.
//!
//! The paper's analytical model assigns proportionality constants to each
//! scheme: 1 for the contiguous reference, ~3 for copy-then-send (2N
//! reads + N writes, no overlap; ~2 with NIC offload of the send). This
//! binary measures each scheme's mid-size slowdown against the reference
//! and prints measured-vs-predicted, the quantitative core of §5's
//! "slowdown of at least a factor of three" conclusion.

use nonctg_bench::Options;
use nonctg_report::{fmt_bytes, Table};
use nonctg_schemes::{run_scheme, PingPongConfig, Scheme, Workload};

fn predicted(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Reference => "1",
        Scheme::Copying | Scheme::PackingVector => "2-3",
        Scheme::VectorType | Scheme::Subarray => "2-3 (tracks copying)",
        Scheme::Buffered => "> vector type",
        Scheme::OneSided => "size-dependent",
        Scheme::PackingElement => ">> all others",
    }
}

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&opts.out_dir).expect("out dir");
    let bytes = 1usize << 22; // 4 MiB: mid-size, past eager, before the internal buffer
    let w = Workload::every_other(bytes / Workload::ELEM);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for platform in opts.platforms() {
        println!(
            "== §2 cost model vs measurement on {} ({} messages) ==",
            platform.id,
            fmt_bytes(bytes)
        );
        let cfg = PingPongConfig { reps: opts.reps.min(10), ..PingPongConfig::default() }
            .adaptive(bytes);
        let reference = run_scheme(&platform, Scheme::Reference, &w, &cfg).time();
        let mut t = Table::new(["scheme", "measured slowdown", "paper predicts"]);
        for scheme in Scheme::ALL {
            let time = run_scheme(&platform, scheme, &w, &cfg).time();
            let slowdown = time / reference;
            t.row([
                scheme.label().to_string(),
                format!("{slowdown:.2}"),
                predicted(scheme).to_string(),
            ]);
            csv_rows.push(vec![
                platform.id.name().into(),
                scheme.key().into(),
                format!("{slowdown:.4}"),
                predicted(scheme).into(),
            ]);
        }
        println!("{}", t.render());
    }

    let csv = nonctg_report::csv::to_csv(
        &["platform", "scheme", "measured_slowdown", "predicted"],
        &csv_rows,
    );
    let path = opts.out_dir.join("cost_table.csv");
    std::fs::write(&path, csv).expect("write csv");
    eprintln!("wrote {}", path.display());
}
