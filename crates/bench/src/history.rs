//! Append-only bench history and the regression sentinel.
//!
//! Every `BENCH_*.json` writer funnels through [`write_bench_json`]: the
//! document is written to its usual path *and* appended, wrapped in a
//! provenance envelope (host fingerprint, git sha, unix time), to the
//! history directory — `$NONCTG_BENCH_HISTORY`, defaulting to
//! `BENCH_history/`. `nonctg-regress` then compares the newest entry's
//! metrics against the trailing median of the older ones with a
//! noise-aware tolerance, so CI can fail on real slowdowns without
//! flaking on scheduler jitter.
//!
//! The crate stays dependency-free, so this module carries a small
//! recursive-descent JSON reader ([`parse_json`]) for its own envelopes
//! and for tests that need to round-trip exported documents.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A parsed JSON value (objects keep key order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset; numbers are read
/// as `f64` (all the harness ever writes).
pub fn parse_json(src: &str) -> Result<Value, String> {
    let mut p = JsonParser { bytes: src.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar, not just one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("bad utf-8 at byte {}", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Schema version stamped into every history envelope.
pub const HISTORY_SCHEMA_VERSION: u32 = 1;

/// History directory: `$NONCTG_BENCH_HISTORY` when set, else
/// `BENCH_history/` in the working directory.
pub fn history_dir() -> PathBuf {
    std::env::var_os("NONCTG_BENCH_HISTORY")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_history"))
}

fn hostname() -> String {
    fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown".into())
}

fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Write a bench document to `out_path` **and** append a wrapped copy
/// to the history directory. The envelope records when, where, and at
/// which commit the numbers were taken; the document itself is embedded
/// verbatim under `"payload"`. Returns the history entry's path.
///
/// History file names sort by run order (`<bench>-<index>-<unixtime>`),
/// so readers can rely on lexicographic order.
pub fn write_bench_json(bench: &str, out_path: &Path, body: &str) -> std::io::Result<PathBuf> {
    if let Some(dir) = out_path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    fs::write(out_path, body)?;

    let dir = history_dir();
    fs::create_dir_all(&dir)?;
    let index = fs::read_dir(&dir)?
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_string_lossy()
                .starts_with(&format!("{bench}-"))
        })
        .count();
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut doc = String::new();
    let _ = writeln!(doc, "{{");
    let _ = writeln!(doc, "  \"schema_version\": {HISTORY_SCHEMA_VERSION},");
    let _ = writeln!(doc, "  \"bench\": \"{bench}\",");
    let _ = writeln!(doc, "  \"unix_time\": {unix},");
    let _ = writeln!(
        doc,
        "  \"host\": {{\"name\": \"{}\", \"threads\": {threads}, \"arch\": \"{}\", \"os\": \"{}\"}},",
        hostname(),
        std::env::consts::ARCH,
        std::env::consts::OS
    );
    let _ = writeln!(doc, "  \"git_sha\": \"{}\",", git_sha());
    let _ = writeln!(doc, "  \"payload\": {}", body.trim_end());
    let _ = writeln!(doc, "}}");
    let entry = dir.join(format!("{bench}-{index:05}-{unix}.json"));
    fs::write(&entry, doc)?;
    Ok(entry)
}

/// One history entry, parsed.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// Bench name from the envelope.
    pub bench: String,
    /// Capture time (unix seconds).
    pub unix_time: f64,
    /// Short commit id (or `"unknown"` outside a checkout).
    pub git_sha: String,
    /// The wrapped bench document.
    pub payload: Value,
    /// Entry file path.
    pub path: PathBuf,
}

/// Load every parseable history entry for `bench` from `dir`, oldest
/// first (file-name order, which encodes run order).
pub fn load_history(dir: &Path, bench: &str) -> Vec<HistoryEntry> {
    let mut names: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .map(|n| {
                        let n = n.to_string_lossy();
                        n.starts_with(&format!("{bench}-")) && n.ends_with(".json")
                    })
                    .unwrap_or(false)
            })
            .collect(),
        Err(_) => return Vec::new(),
    };
    names.sort();
    names
        .into_iter()
        .filter_map(|path| {
            let doc = parse_json(&fs::read_to_string(&path).ok()?).ok()?;
            Some(HistoryEntry {
                bench: doc.get("bench")?.as_str()?.to_string(),
                unix_time: doc.get("unix_time")?.as_f64()?,
                git_sha: doc.get("git_sha")?.as_str()?.to_string(),
                payload: doc.get("payload")?.clone(),
                path,
            })
        })
        .collect()
}

/// Extract the lower-is-better scalar metrics a bench payload exposes.
///
/// * `pack` payloads: one `pack/<shape>/<payload-label>` metric per
///   result row (`seconds_per_pack`).
/// * `datapath` payloads: the ping-pong monolithic/chunked seconds.
pub fn metrics_of(payload: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(entries) = payload.get("results").and_then(Value::as_array) {
        for e in entries {
            let (Some(shape), Some(label), Some(secs)) = (
                e.get("shape").and_then(Value::as_str),
                e.get("payload").and_then(Value::as_str),
                e.get("seconds_per_pack").and_then(Value::as_f64),
            ) else {
                continue;
            };
            out.push((format!("pack/{shape}/{label}"), secs));
        }
    }
    if let Some(pp) = payload.get("pingpong") {
        for key in ["monolithic_s", "chunked_s"] {
            if let Some(v) = pp.get(key).and_then(Value::as_f64) {
                out.push((format!("pingpong/{key}"), v));
            }
        }
    }
    out
}

/// One detected slowdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Metric name (see [`metrics_of`]).
    pub metric: String,
    /// Newest entry's value.
    pub newest: f64,
    /// Median of the trailing baseline entries.
    pub median: f64,
    /// Threshold the newest value exceeded.
    pub allowed: f64,
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Compare the last metric set against the trailing ones.
///
/// For each metric in the newest set with at least two baseline
/// observations, the allowed ceiling is
/// `median + max(tol_frac * median, 3 * MAD)` — the MAD term keeps a
/// noisy metric from flagging on its own jitter, the fractional term
/// keeps a perfectly quiet metric from flagging on femtosecond drift.
/// Fewer than two baseline entries (cold history) detects nothing.
pub fn detect_regressions(runs: &[Vec<(String, f64)>], tol_frac: f64) -> Vec<Regression> {
    let Some((newest, baseline)) = runs.split_last() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (metric, value) in newest {
        let mut base: Vec<f64> = baseline
            .iter()
            .filter_map(|run| {
                run.iter().find(|(m, _)| m == metric).map(|&(_, v)| v)
            })
            .collect();
        if base.len() < 2 {
            continue;
        }
        base.sort_by(f64::total_cmp);
        let m = median(&base);
        let mut devs: Vec<f64> = base.iter().map(|v| (v - m).abs()).collect();
        devs.sort_by(f64::total_cmp);
        let mad = median(&devs);
        let allowed = m + (tol_frac * m).max(3.0 * mad);
        if *value > allowed {
            out.push(Regression { metric: metric.clone(), newest: *value, median: m, allowed });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse_json(
            r#"{"a": [1, 2.5, -3e-2], "b": {"c": "x\ny", "d": true, "e": null}, "f": "π"}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-0.03));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
        assert_eq!(v.get("f").unwrap().as_str(), Some("π"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\": 1} x").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn parses_unicode_escape() {
        let v = parse_json(r#""aéb""#).unwrap();
        assert_eq!(v.as_str(), Some("aéb"));
    }

    fn run(vals: &[(&str, f64)]) -> Vec<(String, f64)> {
        vals.iter().map(|&(m, v)| (m.to_string(), v)).collect()
    }

    #[test]
    fn detects_injected_slowdown() {
        let runs = vec![
            run(&[("pack/vector/1024", 1.00)]),
            run(&[("pack/vector/1024", 1.02)]),
            run(&[("pack/vector/1024", 0.99)]),
            run(&[("pack/vector/1024", 1.50)]),
        ];
        let regs = detect_regressions(&runs, 0.20);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "pack/vector/1024");
        assert!((regs[0].median - 1.00).abs() < 1e-12);
    }

    #[test]
    fn quiet_history_passes() {
        let runs = vec![
            run(&[("m", 1.00)]),
            run(&[("m", 1.01)]),
            run(&[("m", 0.99)]),
            run(&[("m", 1.05)]),
        ];
        assert!(detect_regressions(&runs, 0.20).is_empty());
    }

    #[test]
    fn noisy_metric_widens_tolerance() {
        // Baseline noise of +-50%: a 1.6 reading is within 3*MAD even
        // though it exceeds median * 1.2.
        let runs = vec![
            run(&[("m", 0.50)]),
            run(&[("m", 1.50)]),
            run(&[("m", 1.00)]),
            run(&[("m", 1.60)]),
        ];
        assert!(detect_regressions(&runs, 0.20).is_empty());
    }

    #[test]
    fn cold_history_detects_nothing() {
        let runs = vec![run(&[("m", 1.0)]), run(&[("m", 9.9)])];
        assert!(detect_regressions(&runs, 0.20).is_empty());
        assert!(detect_regressions(&[], 0.20).is_empty());
    }

    #[test]
    fn metrics_of_pack_and_datapath() {
        let pack = parse_json(
            r#"{"results": [
                {"shape": "strided", "payload": "1KB", "seconds_per_pack": 1e-6},
                {"shape": "subarray", "payload": "1MB", "seconds_per_pack": 2e-6}
            ]}"#,
        )
        .unwrap();
        let m = metrics_of(&pack);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, "pack/strided/1KB");

        let dp = parse_json(r#"{"pingpong": {"monolithic_s": 0.5, "chunked_s": 0.3}}"#).unwrap();
        let m = metrics_of(&dp);
        assert_eq!(m.len(), 2);
        assert_eq!(m[1], ("pingpong/chunked_s".to_string(), 0.3));
    }

    #[test]
    fn write_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("nonctg-hist-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        std::env::set_var("NONCTG_BENCH_HISTORY", &dir);
        let out = dir.join("BENCH_demo.json");
        write_bench_json("demo", &out, "{\"entries\": []}\n").unwrap();
        write_bench_json("demo", &out, "{\"entries\": []}\n").unwrap();
        let hist = load_history(&dir, "demo");
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].bench, "demo");
        assert!(hist[0].payload.get("entries").is_some());
        assert!(hist[0].path < hist[1].path);
        std::env::remove_var("NONCTG_BENCH_HISTORY");
        let _ = fs::remove_dir_all(&dir);
    }
}
