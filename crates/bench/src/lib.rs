//! # nonctg-bench — harness utilities behind the figure binaries
//!
//! Maps sweeps onto the report crate's plotting structures with the fixed
//! scheme→palette assignment, renders the paper's three-panel figures
//! (time / bandwidth / slowdown), and provides the tiny CLI option parser
//! the binaries share.

#![warn(missing_docs)]

pub mod history;

use std::fs;
use std::path::{Path, PathBuf};

use nonctg_core::TraceEvent;
use nonctg_report::{chrome_trace_json, render_figure, PanelGeom, PlotSpec, Series, Span};
use nonctg_schemes::{
    try_run_scheme_observed, CheckpointError, Observe, PhaseSweep, PingPongConfig, Scheme, Sweep,
    SweepPoint, Workload,
};
use nonctg_simnet::{Datapath, Platform, PlatformId};

pub use cli::Options;

/// Palette slot of a scheme (fixed: color follows the scheme identity).
pub fn palette_slot(scheme: Scheme) -> usize {
    match scheme {
        Scheme::Reference => 0,
        Scheme::Copying => 1,
        Scheme::Buffered => 2,
        Scheme::VectorType => 3,
        Scheme::Subarray => 4,
        Scheme::OneSided => 5,
        Scheme::PackingElement => 6,
        Scheme::PackingVector => 7,
    }
}

/// Convert one sweep metric into plot series (legend order). Points that
/// were not measured (Failed/Skipped under fault injection) carry NaN
/// metrics and are dropped here, so they render as gaps in the curve
/// rather than corrupting the plot; their x positions become ×-marks at
/// the panel's bottom edge. Points measured through at least one
/// graceful demotion get an open-circle overlay marker, and points whose
/// non-contiguous sends took a non-pack engine get a shape marker
/// (square = zero-copy iovec, diamond = elementwise).
pub fn sweep_series(sweep: &Sweep, metric: impl Fn(&SweepPoint) -> f64) -> Vec<Series> {
    let mut out = Vec::new();
    for scheme in Scheme::ALL {
        let series = sweep.series(scheme);
        let finite = |p: &&SweepPoint| metric(p).is_finite();
        let xy = |p: &SweepPoint| (p.msg_bytes as f64, metric(p));
        let pts: Vec<(f64, f64)> = series.iter().filter(finite).map(xy).collect();
        let marked: Vec<(f64, f64)> = series
            .iter()
            .filter(|p| p.faults.demotions > 0)
            .filter(finite)
            .map(xy)
            .collect();
        let iov_marked: Vec<(f64, f64)> = series
            .iter()
            .filter(|p| p.selected == Datapath::Iov)
            .filter(finite)
            .map(xy)
            .collect();
        let elem_marked: Vec<(f64, f64)> = series
            .iter()
            .filter(|p| p.selected == Datapath::Elem)
            .filter(finite)
            .map(xy)
            .collect();
        let failed_x: Vec<f64> = series
            .iter()
            .filter(|p| !matches!(p.status, nonctg_schemes::PointStatus::Ok))
            .map(|p| p.msg_bytes as f64)
            .collect();
        if pts.is_empty() && failed_x.is_empty() {
            continue;
        }
        out.push(
            Series::new(scheme.label(), palette_slot(scheme), pts)
                .with_marked(marked)
                .with_failed(failed_x)
                .with_iov_marked(iov_marked)
                .with_elem_marked(elem_marked),
        );
    }
    out
}

/// The paper's three panels for a sweep: time (log-log), bandwidth in Gb/s
/// (semilog-x), slowdown clamped at 10 (semilog-x).
pub fn paper_panels(sweep: &Sweep) -> Vec<(PlotSpec, Vec<Series>)> {
    vec![
        (
            PlotSpec::loglog("Time (sec)", "message size (bytes)", "seconds"),
            sweep_series(sweep, |p| p.time),
        ),
        (
            // The paper labels this axis Gb/s but plots gigaBYTES/s (its
            // Omni-Path peak reads 12.5); we match the plotted values.
            PlotSpec::semilogx("bwidth (GB/s)", "message size (bytes)", "GB/s", f64::INFINITY),
            sweep_series(sweep, |p| p.bandwidth / 1e9),
        ),
        (
            PlotSpec::semilogx("slowdown", "message size (bytes)", "vs reference", 10.0),
            sweep_series(sweep, |p| p.slowdown),
        ),
    ]
}

/// Long-format CSV of a sweep (the figures' table view).
pub fn sweep_csv(sweep: &Sweep) -> String {
    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                sweep.platform.name().to_string(),
                p.scheme.key().to_string(),
                p.msg_bytes.to_string(),
                format!("{:.9e}", p.time),
                format!("{:.6e}", p.bandwidth),
                format!("{:.4}", p.slowdown),
                p.status.key().to_string(),
                p.selected.name().to_string(),
                p.faults.demotions.to_string(),
            ]
        })
        .collect();
    nonctg_report::csv::to_csv(
        &[
            "platform",
            "scheme",
            "msg_bytes",
            "time_s",
            "bandwidth_Bps",
            "slowdown",
            "status",
            "selected",
            "demotions",
        ],
        &rows,
    )
}

/// How loading a `--resume` checkpoint turned out (see
/// [`load_resume_checkpoint`]).
#[derive(Debug)]
pub enum ResumeLoad {
    /// The checkpoint parsed and matches the requested platform; its Ok
    /// points will be reused.
    Resumed(Sweep),
    /// No checkpoint exists yet — a first run. Start fresh, quietly.
    Fresh,
    /// A checkpoint exists but cannot be used (unreadable file, corrupt
    /// contents, or a different platform). Start fresh, but only after
    /// the caller prints this warning: silently discarding a file the
    /// user explicitly passed to `--resume` hides data loss.
    FreshWithWarning(String),
    /// The checkpoint declares a schema version this build cannot read.
    /// The caller must abort (exit 2) instead of guessing.
    Fatal(String),
}

/// Load the `--resume` checkpoint at `path` for a sweep on `platform`.
///
/// Distinguishes the four outcomes the figures driver must handle
/// differently: a missing file is a normal first run; a corrupt or
/// mismatched checkpoint starts fresh **with a loud warning naming the
/// file and the parse error** (regression guard: `CheckpointError::Parse`
/// used to be swallowed silently); a schema-version mismatch is fatal.
pub fn load_resume_checkpoint(path: &Path, platform: PlatformId) -> ResumeLoad {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return ResumeLoad::Fresh,
        Err(e) => {
            return ResumeLoad::FreshWithWarning(format!(
                "warning: cannot read checkpoint {}: {e}; starting a fresh sweep",
                path.display()
            ))
        }
    };
    match Sweep::from_checkpoint_json(&text) {
        Ok(s) if s.platform == platform => ResumeLoad::Resumed(s),
        Ok(s) => ResumeLoad::FreshWithWarning(format!(
            "warning: checkpoint {} is for platform {}, not {}; starting a fresh sweep \
             (it will be overwritten)",
            path.display(),
            s.platform,
            platform
        )),
        // A schema mismatch is a user-facing error, not line noise:
        // silently restarting would discard the sweep the user
        // explicitly asked to resume.
        Err(e @ CheckpointError::VersionMismatch { .. }) => {
            ResumeLoad::Fatal(format!("cannot resume from {}: {e}", path.display()))
        }
        Err(CheckpointError::Parse(msg)) => ResumeLoad::FreshWithWarning(format!(
            "warning: corrupt checkpoint {}: {msg}; starting a fresh sweep \
             (it will be overwritten)",
            path.display()
        )),
    }
}

/// Default relative tolerance of the guideline checks: two point means
/// closer than this are measurement-indistinguishable under the paper's
/// ±1σ outlier rejection (`stats::summarize` / `kept_mask` dismiss
/// samples one standard deviation out, so surviving means can differ by
/// a noise band of this order without signifying a real ordering).
pub const GUIDELINE_TOL: f64 = 0.10;

/// One violated performance guideline at one sweep point.
#[derive(Debug, Clone)]
pub struct GuidelineViolation {
    /// Stable key of the violated guideline.
    pub guideline: &'static str,
    /// Message size at which it was violated.
    pub msg_bytes: usize,
    /// Measured left-hand/right-hand time ratio (≤ `1 + tol` passes).
    pub ratio: f64,
    /// Human-readable description of the comparison.
    pub detail: String,
}

/// Check a measured sweep against Hunold-style self-consistency
/// guidelines, with relative tolerance `tol` (see [`GUIDELINE_TOL`]):
///
/// * `derived-vs-pack` — sending through a derived datatype
///   (vector type) should not be slower than explicitly packing and
///   sending the same layout (packing(v)). Real MPIs violate this in
///   known protocol regimes (a packed send that stays eager while the
///   derived send goes rendezvous; staging degradation past the
///   internal buffer) — the checker reports those as findings.
/// * `subarray-vs-vector` — subarray and vector describe the same
///   layout, so their times must agree within tolerance (both ways).
/// * `bsend-vs-send` — a buffered send (`Bsend`) of the derived type
///   adds an attach-buffer staging copy on top of the plain derived
///   send, so `send ≤ Bsend`: the plain send being slower than its
///   buffered variant is a violation.
/// * `packing-e-vs-v` — packing the whole vector with one `Pack` call
///   cannot be slower than issuing one `Pack` call per element over the
///   same layout, so `packing(v) ≤ packing(e)`.
/// * `reference-floor` — no non-contiguous scheme beats the contiguous
///   reference send of the same payload.
///
/// Only points with [`PointStatus::Ok`](nonctg_schemes::PointStatus) and
/// finite times participate; a size missing either side of a comparison
/// is skipped, never reported.
pub fn guideline_violations(sweep: &Sweep, tol: f64) -> Vec<GuidelineViolation> {
    let mut out = Vec::new();
    let ok_time = |scheme, bytes| {
        sweep
            .get(scheme, bytes)
            .filter(|p| p.status == nonctg_schemes::PointStatus::Ok && p.time.is_finite())
            .map(|p| p.time)
    };
    let mut check = |name, bytes, lhs_label: &str, lhs: f64, rhs_label: &str, rhs: f64| {
        let ratio = lhs / rhs;
        if ratio > 1.0 + tol {
            out.push(GuidelineViolation {
                guideline: name,
                msg_bytes: bytes,
                ratio,
                detail: format!(
                    "{lhs_label} {lhs:.3e}s vs {rhs_label} {rhs:.3e}s at {bytes} bytes"
                ),
            });
        }
    };
    for bytes in sweep.sizes() {
        let vec_t = ok_time(Scheme::VectorType, bytes);
        if let (Some(v), Some(p)) = (vec_t, ok_time(Scheme::PackingVector, bytes)) {
            check("derived-vs-pack", bytes, "vector type", v, "packing(v)", p);
        }
        if let (Some(v), Some(s)) = (vec_t, ok_time(Scheme::Subarray, bytes)) {
            check("subarray-vs-vector", bytes, "subarray", s, "vector type", v);
            check("subarray-vs-vector", bytes, "vector type", v, "subarray", s);
        }
        if let (Some(v), Some(b)) = (vec_t, ok_time(Scheme::Buffered, bytes)) {
            check("bsend-vs-send", bytes, "vector type (send)", v, "buffered (bsend)", b);
        }
        let pv_t = ok_time(Scheme::PackingVector, bytes);
        if let (Some(pv), Some(pe)) = (pv_t, ok_time(Scheme::PackingElement, bytes)) {
            check("packing-e-vs-v", bytes, "packing(v)", pv, "packing(e)", pe);
        }
        if let Some(r) = ok_time(Scheme::Reference, bytes) {
            for scheme in Scheme::NON_CONTIGUOUS {
                if let Some(t) = ok_time(scheme, bytes) {
                    // A non-contiguous scheme "beats" reference when its
                    // time falls below r beyond tolerance.
                    check("reference-floor", bytes, "reference", r, scheme.label(), t);
                }
            }
        }
    }
    out
}

/// CSV table of guideline outcomes for a sweep: one row per violated
/// guideline instance (empty table = clean), columns
/// `platform,guideline,msg_bytes,ratio,detail`.
pub fn guidelines_csv(sweep: &Sweep, tol: f64) -> String {
    let rows: Vec<Vec<String>> = guideline_violations(sweep, tol)
        .into_iter()
        .map(|v| {
            vec![
                sweep.platform.name().to_string(),
                v.guideline.to_string(),
                v.msg_bytes.to_string(),
                format!("{:.4}", v.ratio),
                v.detail,
            ]
        })
        .collect();
    nonctg_report::csv::to_csv(&["platform", "guideline", "msg_bytes", "ratio", "detail"], &rows)
}

/// Render and write `<out>/<stem>.svg` and `<out>/<stem>.csv`; returns the
/// SVG path.
pub fn write_figure(out_dir: &Path, stem: &str, title: &str, sweep: &Sweep) -> PathBuf {
    fs::create_dir_all(out_dir).expect("create output dir");
    let svg = render_figure(title, &paper_panels(sweep), PanelGeom::default());
    let svg_path = out_dir.join(format!("{stem}.svg"));
    fs::write(&svg_path, svg).expect("write svg");
    fs::write(out_dir.join(format!("{stem}.csv")), sweep_csv(sweep)).expect("write csv");
    svg_path
}

/// Wall-clock memcpy throughput (bytes/sec) for a contiguous copy of
/// `bytes`, measured over roughly `target_secs` of repetitions after an
/// untimed warm-up. This is the roofline every pack kernel is attributed
/// against: a pack at 100% moves its packed payload as fast as a plain
/// copy of the same size.
pub fn memcpy_reference(bytes: usize, target_secs: f64) -> f64 {
    use std::hint::black_box;
    use std::time::Instant;
    let bytes = bytes.max(1);
    let src = vec![0x5Au8; bytes];
    let mut dst = vec![0u8; bytes];
    dst.copy_from_slice(&src); // warm pages
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(&mut dst[..]).copy_from_slice(black_box(&src[..]));
        }
        let secs = t0.elapsed().as_secs_f64();
        if secs >= target_secs || iters >= 1 << 22 {
            return (bytes * iters) as f64 / secs.max(1e-12);
        }
        iters = (iters * 2).max((iters as f64 * 1.1 * target_secs / secs.max(1e-9)) as usize);
    }
}

/// Convert per-rank traced events (outer index = rank) into report
/// spans: one track per rank, named by the operation's label.
pub fn events_to_spans(events: &[Vec<TraceEvent>]) -> Vec<Span> {
    let mut spans = Vec::new();
    for (rank, evs) in events.iter().enumerate() {
        for e in evs {
            spans.push(Span {
                track: rank,
                name: e.kind.label().to_string(),
                t_start: e.t_start,
                t_end: e.t_end,
                bytes: e.bytes,
                peer: e.peer,
                tag: e.tag.map(i64::from),
                seq: e.seq,
                depth: e.depth,
            });
        }
    }
    spans
}

/// Number of elements in the instrumented observability ping-pong
/// (2^20 doubles, an 8 MiB payload — the paper's large-message regime).
pub const OBS_ELEMS: usize = 1 << 20;

/// Run an instrumented two-rank vector-type ping-pong ([`OBS_ELEMS`]
/// elements) and write the requested artifacts: a Chrome-tracing /
/// Perfetto JSON to `trace_out` and the merged per-rank metrics JSON to
/// `metrics_out`. Does nothing when both are `None`; with `ascii` set,
/// also prints the per-rank timeline to stdout.
pub fn write_observability(
    platform: &Platform,
    trace_out: Option<&Path>,
    metrics_out: Option<&Path>,
    ascii: bool,
) {
    if trace_out.is_none() && metrics_out.is_none() {
        return;
    }
    let obs = Observe { trace: trace_out.is_some(), metrics: metrics_out.is_some() };
    let w = Workload::every_other(OBS_ELEMS);
    let cfg = PingPongConfig { reps: 3, ..PingPongConfig::default() };
    let run = try_run_scheme_observed(platform, Scheme::VectorType, &w, &cfg, obs)
        .expect("instrumented ping-pong failed");
    if let Some(path) = trace_out {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).expect("create trace output dir");
        }
        let spans = events_to_spans(&run.events);
        let names: Vec<String> = (0..run.events.len()).map(|r| format!("rank {r}")).collect();
        let process = format!("nonctg {} vector ping-pong", platform.id);
        fs::write(path, chrome_trace_json(&spans, &process, &names)).expect("write trace json");
        eprintln!("  wrote {} ({} spans)", path.display(), spans.len());
        if ascii {
            println!("{}", nonctg_report::ascii_spans(&spans, 100));
        }
    }
    if let Some(path) = metrics_out {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).expect("create metrics output dir");
        }
        let m = run.metrics.expect("metrics requested but not collected");
        fs::write(path, m.to_json()).expect("write metrics json");
        eprintln!("  wrote {}", path.display());
    }
}

/// Write `phases_<stem>.csv` and `phases_<stem>.json`; returns the CSV
/// path.
pub fn write_phases(out_dir: &Path, stem: &str, phases: &PhaseSweep) -> PathBuf {
    fs::create_dir_all(out_dir).expect("create output dir");
    let csv_path = out_dir.join(format!("phases_{stem}.csv"));
    fs::write(&csv_path, phases.to_csv()).expect("write phases csv");
    fs::write(out_dir.join(format!("phases_{stem}.json")), phases.to_json())
        .expect("write phases json");
    csv_path
}

/// ASCII rendering of a sweep's three panels for the terminal.
pub fn ascii_figure(sweep: &Sweep) -> String {
    let mut out = String::new();
    for (spec, series) in paper_panels(sweep) {
        out.push_str(&nonctg_report::asciiplot::render(&spec, &series, 72, 18));
        out.push('\n');
    }
    out
}

mod cli {
    use nonctg_schemes::{PingPongConfig, SweepConfig};
    use nonctg_simnet::{FaultPlan, Platform, PlatformId};

    /// Shared CLI options of the figure binaries.
    #[derive(Debug, Clone)]
    pub struct Options {
        /// Platforms to run (default: all four).
        pub platforms: Vec<PlatformId>,
        /// Smallest message in bytes.
        pub min_bytes: usize,
        /// Largest message in bytes.
        pub max_bytes: usize,
        /// Geometric size step.
        pub step: usize,
        /// Ping-pongs per point.
        pub reps: usize,
        /// Output directory.
        pub out_dir: std::path::PathBuf,
        /// Skip payload verification (faster).
        pub no_verify: bool,
        /// Print ASCII plots.
        pub ascii: bool,
        /// Concurrently-measured sweep points (1 = sequential).
        pub jobs: usize,
        /// Statically-partitioned sweep shards (1 = sequential). Each
        /// shard measures every N-th point of the canonical work list on
        /// its own rank pair; output is bit-equal to the serial run.
        pub shards: usize,
        /// Inject a chaos fault plan with this seed (None = fault-free).
        pub fault_seed: Option<u64>,
        /// `--chaos <seed>` was given: same fault plan as `--fault-seed`
        /// (the extended v2 chaos mix), plus a per-sweep health report
        /// printed by the drivers.
        pub chaos: bool,
        /// Override the watchdog deadlock timeout, seconds.
        pub deadlock_timeout: Option<f64>,
        /// Checkpoint file: completed points are saved here after every
        /// size group, and reloaded on the next run so only missing or
        /// failed points re-execute.
        pub resume: Option<std::path::PathBuf>,
        /// Extra measurement attempts per point before marking it Failed
        /// (only used by the resilient runner).
        pub retries: usize,
        /// Write a Chrome-tracing / Perfetto JSON of an instrumented
        /// two-rank ping-pong to this file (None = tracing off).
        pub trace_out: Option<std::path::PathBuf>,
        /// Write the instrumented run's merged metrics JSON to this file
        /// (None = metrics off).
        pub metrics_out: Option<std::path::PathBuf>,
        /// Also run the phase-attribution sweep and write
        /// `phases_<stem>.csv` / `.json` next to each figure.
        pub phases: bool,
    }

    impl Default for Options {
        fn default() -> Self {
            Options {
                platforms: PlatformId::ALL.to_vec(),
                min_bytes: 1 << 10,
                max_bytes: 1 << 28,
                step: 2,
                reps: 20,
                out_dir: "bench_out".into(),
                no_verify: false,
                ascii: true,
                jobs: 1,
                shards: 1,
                fault_seed: None,
                chaos: false,
                deadlock_timeout: None,
                resume: None,
                retries: 1,
                trace_out: None,
                metrics_out: None,
                phases: false,
            }
        }
    }

    impl Options {
        /// Parse `args` (without the program name). Understands
        /// `--platform`, `--min-bytes`, `--max-bytes`, `--step`, `--reps`,
        /// `--out`, `--quick`, `--full`, `--no-verify`, `--no-ascii`.
        pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
            let mut o = Options::default();
            let mut it = args.into_iter();
            while let Some(a) = it.next() {
                let mut val = |name: &str| {
                    it.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match a.as_str() {
                    "--platform" | "-p" => {
                        let v = val("--platform")?;
                        if v == "all" {
                            o.platforms = PlatformId::ALL.to_vec();
                        } else {
                            o.platforms = vec![v.parse()?];
                        }
                    }
                    "--min-bytes" => o.min_bytes = parse_size(&val("--min-bytes")?)?,
                    "--max-bytes" => o.max_bytes = parse_size(&val("--max-bytes")?)?,
                    "--step" => {
                        o.step = val("--step")?.parse().map_err(|e| format!("--step: {e}"))?
                    }
                    "--reps" => {
                        o.reps = val("--reps")?.parse().map_err(|e| format!("--reps: {e}"))?
                    }
                    "--out" => o.out_dir = val("--out")?.into(),
                    "--jobs" | "-j" => {
                        o.jobs = val("--jobs")?
                            .parse()
                            .map_err(|e| format!("--jobs: {e}"))?
                    }
                    "--shards" => {
                        o.shards = val("--shards")?
                            .parse()
                            .map_err(|e| format!("--shards: {e}"))?
                    }
                    "--quick" => {
                        o.max_bytes = 1 << 22;
                        o.step = 4;
                        o.reps = 5;
                    }
                    "--full" => {
                        o.max_bytes = 1 << 30;
                    }
                    "--fault-seed" => {
                        o.fault_seed = Some(
                            val("--fault-seed")?
                                .parse()
                                .map_err(|e| format!("--fault-seed: {e}"))?,
                        )
                    }
                    "--chaos" => {
                        o.fault_seed = Some(
                            val("--chaos")?.parse().map_err(|e| format!("--chaos: {e}"))?,
                        );
                        o.chaos = true;
                    }
                    "--deadlock-timeout" => {
                        let t: f64 = val("--deadlock-timeout")?
                            .parse()
                            .map_err(|e| format!("--deadlock-timeout: {e}"))?;
                        if t.is_nan() || t <= 0.0 {
                            return Err("--deadlock-timeout must be positive".into());
                        }
                        o.deadlock_timeout = Some(t);
                    }
                    "--resume" => o.resume = Some(val("--resume")?.into()),
                    "--retries" => {
                        o.retries = val("--retries")?
                            .parse()
                            .map_err(|e| format!("--retries: {e}"))?
                    }
                    "--trace-out" => o.trace_out = Some(val("--trace-out")?.into()),
                    "--metrics-out" => o.metrics_out = Some(val("--metrics-out")?.into()),
                    "--phases" => o.phases = true,
                    "--no-verify" => o.no_verify = true,
                    "--no-ascii" => o.ascii = false,
                    "--help" | "-h" => return Err(Self::usage().into()),
                    other => return Err(format!("unknown option '{other}'\n{}", Self::usage())),
                }
            }
            if o.min_bytes > o.max_bytes {
                return Err("--min-bytes exceeds --max-bytes".into());
            }
            Ok(o)
        }

        /// Usage text.
        pub fn usage() -> &'static str {
            "options: --platform <skx-impi|skx-mvapich2|ls5-craympich|knl-impi|all> \
             --min-bytes N --max-bytes N --step K --reps N --out DIR --jobs J \
             --shards N --quick --full --no-verify --no-ascii --fault-seed N \
             --chaos SEED --deadlock-timeout SECS --resume FILE --retries N \
             --trace-out FILE --metrics-out FILE --phases"
        }

        /// The sweep configuration these options describe.
        pub fn sweep_config(&self) -> SweepConfig {
            SweepConfig {
                schemes: nonctg_schemes::Scheme::ALL.to_vec(),
                min_bytes: self.min_bytes,
                max_bytes: self.max_bytes,
                step: self.step,
                base: PingPongConfig {
                    reps: self.reps,
                    verify: !self.no_verify,
                    ..PingPongConfig::default()
                },
            }
        }

        /// Resolve the platform presets, applying `--fault-seed` and
        /// `--deadlock-timeout`.
        pub fn platforms(&self) -> Vec<Platform> {
            self.platforms
                .iter()
                .map(|&id| {
                    let mut p = Platform::get(id);
                    if let Some(seed) = self.fault_seed {
                        p = p.with_fault_plan(FaultPlan::chaos(seed));
                    }
                    if let Some(t) = self.deadlock_timeout {
                        p = p.with_deadlock_timeout(t);
                    }
                    p
                })
                .collect()
        }

        /// Whether this invocation needs the fault-tolerant sweep runner
        /// (fault injection active or a checkpoint/resume file given).
        pub fn resilient(&self) -> bool {
            self.fault_seed.is_some() || self.resume.is_some()
        }
    }

    /// Parse sizes like `1048576`, `64k`, `32m`, `1g`.
    pub fn parse_size(s: &str) -> Result<usize, String> {
        let (num, mult) = match s.chars().last() {
            Some('k') | Some('K') => (&s[..s.len() - 1], 1usize << 10),
            Some('m') | Some('M') => (&s[..s.len() - 1], 1 << 20),
            Some('g') | Some('G') => (&s[..s.len() - 1], 1 << 30),
            _ => (s, 1),
        };
        num.parse::<usize>()
            .map(|n| n * mult)
            .map_err(|e| format!("bad size '{s}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonctg_simnet::PlatformId;

    #[test]
    fn palette_slots_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in Scheme::ALL {
            assert!(seen.insert(palette_slot(s)));
        }
    }

    #[test]
    fn options_defaults_and_flags() {
        let o = Options::parse(Vec::<String>::new()).unwrap();
        assert_eq!(o.platforms.len(), 4);
        let o = Options::parse(
            ["--platform", "cray", "--quick", "--out", "/tmp/x"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(o.platforms, vec![PlatformId::Ls5CrayMpich]);
        assert_eq!(o.max_bytes, 1 << 22);
        assert_eq!(o.out_dir, std::path::PathBuf::from("/tmp/x"));
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(cli::parse_size("64k").unwrap(), 64 << 10);
        assert_eq!(cli::parse_size("32M").unwrap(), 32 << 20);
        assert_eq!(cli::parse_size("1g").unwrap(), 1 << 30);
        assert_eq!(cli::parse_size("123").unwrap(), 123);
        assert!(cli::parse_size("abc").is_err());
    }

    #[test]
    fn bad_option_rejected() {
        assert!(Options::parse(["--bogus".to_string()]).is_err());
        assert!(Options::parse(
            ["--min-bytes".to_string(), "8m".into(), "--max-bytes".into(), "1k".into()]
        )
        .is_err());
    }

    #[test]
    fn resilience_flags_parse_and_apply() {
        let o = Options::parse(
            [
                "--fault-seed", "42", "--deadlock-timeout", "2.5", "--resume", "/tmp/ck.json",
                "--retries", "3",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(o.fault_seed, Some(42));
        assert_eq!(o.deadlock_timeout, Some(2.5));
        assert_eq!(o.resume.as_deref(), Some(std::path::Path::new("/tmp/ck.json")));
        assert_eq!(o.retries, 3);
        assert!(o.resilient());
        for p in o.platforms() {
            assert_eq!(p.fault.as_ref().map(|f| f.seed), Some(42));
            assert_eq!(p.deadlock_timeout_s, 2.5);
        }
        assert!(!Options::parse(Vec::<String>::new()).unwrap().resilient());
        assert!(Options::parse(["--deadlock-timeout".to_string(), "0".into()]).is_err());
    }

    #[test]
    fn failed_points_render_as_gaps() {
        use nonctg_schemes::{PointStatus, Sweep, SweepPoint};
        let ok = |scheme, msg_bytes: usize, time: f64| SweepPoint {
            scheme,
            msg_bytes,
            time,
            bandwidth: msg_bytes as f64 / time,
            slowdown: 1.0,
            status: PointStatus::Ok,
            selected: Default::default(),
            faults: Default::default(),
        };
        let failed = SweepPoint {
            scheme: Scheme::Reference,
            msg_bytes: 2048,
            time: f64::NAN,
            bandwidth: 0.0,
            slowdown: f64::NAN,
            status: PointStatus::Failed,
            selected: Default::default(),
            faults: Default::default(),
        };
        let sweep = Sweep {
            platform: PlatformId::SkxImpi,
            points: vec![ok(Scheme::Reference, 1024, 1e-5), failed, ok(Scheme::Reference, 4096, 2e-5)],
            faults: Default::default(),
        };
        let series = sweep_series(&sweep, |p| p.time);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].points.len(), 2, "failed point must be a gap");
        // The CSV still records the failed point, with its status.
        let csv = sweep_csv(&sweep);
        assert!(csv.contains("failed"), "{csv}");
    }

    #[test]
    fn chaos_flag_sets_seed_and_health_reporting() {
        let o = Options::parse(["--chaos", "7"].iter().map(|s| s.to_string())).unwrap();
        assert!(o.chaos);
        assert_eq!(o.fault_seed, Some(7));
        assert!(o.resilient());
        for p in o.platforms() {
            assert_eq!(p.fault.as_ref().map(|f| f.seed), Some(7));
        }
        assert!(!Options::parse(Vec::<String>::new()).unwrap().chaos);
        assert!(Options::parse(["--chaos".to_string()]).is_err());
    }

    #[test]
    fn demoted_and_failed_points_render_distinctly() {
        use nonctg_schemes::{PointStatus, Sweep, SweepFaults, SweepPoint};
        let mk = |msg_bytes: usize, time: f64, status, demotions| SweepPoint {
            scheme: Scheme::VectorType,
            msg_bytes,
            time,
            bandwidth: if time.is_finite() { msg_bytes as f64 / time } else { 0.0 },
            slowdown: 1.0,
            status,
            selected: Default::default(),
            faults: SweepFaults { demotions, ..Default::default() },
        };
        let sweep = Sweep {
            platform: PlatformId::SkxImpi,
            points: vec![
                mk(1024, 1e-5, PointStatus::Ok, 0),
                mk(2048, 2.5e-5, PointStatus::Ok, 3), // degraded but measured
                mk(4096, f64::NAN, PointStatus::Failed, 1),
            ],
            faults: Default::default(),
        };
        let series = sweep_series(&sweep, |p| p.time);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].points.len(), 2);
        assert_eq!(series[0].marked, vec![(2048.0, 2.5e-5)]);
        assert_eq!(series[0].failed_x, vec![4096.0]);
        let svg = render_figure("chaos", &paper_panels(&sweep), PanelGeom::default());
        assert!(svg.contains("<circle"), "demoted marker missing: {svg}");
        assert!(svg.contains("failed-mark"), "failed marker missing");
        // The CSV table view records the demotion count per point.
        let csv = sweep_csv(&sweep);
        assert!(csv.lines().next().unwrap().contains("demotions"), "{csv}");
        assert!(csv.contains(",3"), "{csv}");
    }

    #[test]
    fn sweep_csv_has_header_and_rows() {
        use nonctg_schemes::{run_sweep, PingPongConfig, SweepConfig};
        let mut p = nonctg_simnet::Platform::skx_impi();
        p.jitter_sigma = 0.0;
        let cfg = SweepConfig {
            schemes: vec![Scheme::Reference, Scheme::VectorType],
            min_bytes: 1024,
            max_bytes: 4096,
            step: 4,
            base: PingPongConfig { reps: 2, flush: false, flush_bytes: 0, verify: true },
        };
        let sweep = run_sweep(&p, &cfg);
        let csv = sweep_csv(&sweep);
        let rows = nonctg_report::csv::parse_csv(&csv);
        assert_eq!(rows.len(), 1 + 4);
        assert_eq!(rows[0][1], "scheme");
    }

    #[test]
    fn figure_writes_svg_and_csv() {
        use nonctg_schemes::{run_sweep, PingPongConfig, SweepConfig};
        let mut p = nonctg_simnet::Platform::skx_impi();
        p.jitter_sigma = 0.0;
        let cfg = SweepConfig {
            schemes: Scheme::ALL.to_vec(),
            min_bytes: 1024,
            max_bytes: 2048,
            step: 2,
            base: PingPongConfig { reps: 2, flush: false, flush_bytes: 0, verify: true },
        };
        let sweep = run_sweep(&p, &cfg);
        let dir = std::env::temp_dir().join("nonctg_fig_test");
        let svg = write_figure(&dir, "figtest", "Packing on skx-i3", &sweep);
        assert!(svg.exists());
        assert!(dir.join("figtest.csv").exists());
        let content = std::fs::read_to_string(svg).unwrap();
        assert!(content.contains("slowdown"));
        assert_eq!(content.matches("<path").count(), 24, "8 schemes x 3 panels");
    }
}
