//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **strided fast path** — pack a vector (fast path) vs the identical
//!    layout wrapped so `strided_form` cannot recognize it (generic walk);
//! 2. **commit-time flattening** — pack a committed type (flat slice
//!    iteration) vs the same type uncommitted (streaming frame machine);
//! 3. **online coalescing** — segment iteration with and without merging
//!    adjacent runs, on a type built from mergeable blocks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nonctg_datatype::{as_bytes, pack_into, Datatype, SegIter};
use std::hint::black_box;

/// The paper's layout (every other f64) hidden inside a struct so the
/// strided recognizer rejects it and packing walks segments generically.
fn vector_disguised(n: usize) -> Datatype {
    let v = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap();
    Datatype::structure(&[(1, 0, v)]).unwrap()
}

fn bench_strided_fast_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_strided_fast_path");
    g.sample_size(20);
    let n = 1usize << 16;
    let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
    let mut out = vec![0u8; n * 8];
    let fast = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap(); // uncommitted: no flatten
    let generic = vector_disguised(n);
    assert!(nonctg_datatype::strided_form(&generic).is_none(), "disguise failed");

    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("with_fast_path", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &fast, 1, &mut out).unwrap());
    });
    g.bench_function("generic_walk", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &generic, 1, &mut out).unwrap());
    });
    g.finish();
}

fn bench_flattening(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_commit_flattening");
    g.sample_size(20);
    // An irregular type below the flatten cap (so commit materializes it).
    let nblocks = 1usize << 12;
    let blocks: Vec<(usize, i64)> =
        (0..nblocks).map(|j| (2usize, (j * 5 + j % 2) as i64)).collect();
    let streaming = Datatype::indexed(&blocks, &Datatype::f64()).unwrap();
    let flattened = Datatype::indexed(&blocks, &Datatype::f64()).unwrap().commit();
    assert!(flattened.flattened().is_some());
    let span = (streaming.true_ub()) as usize + 64;
    let src: Vec<u8> = (0..span).map(|i| i as u8).collect();
    let bytes = streaming.size() as usize;
    let mut out = vec![0u8; bytes];

    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("flattened_slice", |b| {
        b.iter(|| pack_into(black_box(&src), 0, &flattened, 1, &mut out).unwrap());
    });
    g.bench_function("streaming_frames", |b| {
        b.iter(|| pack_into(black_box(&src), 0, &streaming, 1, &mut out).unwrap());
    });
    g.finish();
}

fn bench_coalescing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_online_coalescing");
    g.sample_size(20);
    // Blocks that frequently abut: coalescing merges runs of them.
    let nblocks = 1usize << 14;
    let blocks: Vec<(usize, i64)> = (0..nblocks)
        .map(|j| (1usize, (j + j / 4) as i64)) // 3 of 4 adjacent
        .collect();
    let d = Datatype::indexed(&blocks, &Datatype::f64()).unwrap();

    g.bench_function("coalesced_iteration", |b| {
        b.iter(|| SegIter::new(black_box(&d), 1).count());
    });
    g.bench_function("raw_iteration", |b| {
        b.iter(|| SegIter::new_raw(black_box(&d), 1).count());
    });
    // Report the compression the design buys.
    let merged = SegIter::new(&d, 1).count();
    let raw = SegIter::new_raw(&d, 1).count();
    eprintln!("coalescing: {raw} raw segments -> {merged} merged");
    g.finish();
}

criterion_group!(benches, bench_strided_fast_path, bench_flattening, bench_coalescing);
criterion_main!(benches);
