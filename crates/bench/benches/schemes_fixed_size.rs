//! End-to-end harness benchmarks: wall-clock cost of running one measured
//! ping-pong point through the whole stack (universe spawn, real data
//! movement, virtual-time accounting) for each scheme at a fixed size.
//!
//! This guards the *simulator's* throughput — the figures sweep hundreds
//! of points, so a point must stay cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonctg_schemes::{run_scheme, PingPongConfig, Scheme, Workload};
use nonctg_simnet::Platform;

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("harness_point");
    g.sample_size(10);
    let platform = Platform::skx_impi();
    let cfg = PingPongConfig { reps: 5, flush: true, flush_bytes: 1 << 20, verify: false };
    let w = Workload::every_other((256 << 10) / Workload::ELEM); // 256 KiB
    for scheme in Scheme::ALL {
        g.bench_with_input(BenchmarkId::new("scheme", scheme.key()), &scheme, |b, &s| {
            b.iter(|| run_scheme(&platform, s, &w, &cfg));
        });
    }
    g.finish();
}

fn bench_universe_spawn(c: &mut Criterion) {
    let mut g = c.benchmark_group("universe");
    g.sample_size(20);
    g.bench_function("spawn_pair_and_barrier", |b| {
        b.iter(|| {
            nonctg_core::Universe::run_pair(Platform::skx_impi(), |comm| {
                comm.barrier().unwrap();
                comm.wtime()
            })
        });
    });
    g.finish();
}

criterion_group!(benches, bench_schemes, bench_universe_spawn);
criterion_main!(benches);
