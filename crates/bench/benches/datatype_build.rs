//! Benchmarks of datatype construction, commit, and segment iteration —
//! the bookkeeping a real MPI pays per `MPI_Type_*`/`MPI_Type_commit`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonctg_datatype::{ArrayOrder, Datatype, SegIter};
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construct");
    g.sample_size(30);
    g.bench_function("vector", |b| {
        b.iter(|| Datatype::vector(black_box(1 << 20), 1, 2, &Datatype::f64()).unwrap());
    });
    g.bench_function("subarray_3d", |b| {
        b.iter(|| {
            Datatype::subarray(
                black_box(&[64, 64, 64]),
                &[32, 32, 32],
                &[16, 16, 16],
                ArrayOrder::C,
                &Datatype::f64(),
            )
            .unwrap()
        });
    });
    for &nblocks in &[1usize << 10, 1 << 14] {
        let blocks: Vec<(usize, i64)> = (0..nblocks).map(|j| (2usize, 5 * j as i64)).collect();
        g.bench_with_input(BenchmarkId::new("indexed", nblocks), &blocks, |b, blocks| {
            b.iter(|| Datatype::indexed(black_box(blocks), &Datatype::f64()).unwrap());
        });
    }
    g.finish();
}

fn bench_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit");
    g.sample_size(30);
    // Small type: commit materializes the flattened list.
    g.bench_function("vector_flattened", |b| {
        b.iter_with_setup(
            || Datatype::vector(1 << 10, 1, 2, &Datatype::f64()).unwrap(),
            |d| d.commit(),
        );
    });
    // Huge type: commit must *not* materialize.
    g.bench_function("vector_streaming_only", |b| {
        b.iter_with_setup(
            || Datatype::vector(1 << 24, 1, 2, &Datatype::f64()).unwrap(),
            |d| d.commit(),
        );
    });
    g.finish();
}

fn bench_segment_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("segiter");
    g.sample_size(20);
    let nested = {
        let inner = Datatype::vector(64, 2, 4, &Datatype::f64()).unwrap();
        Datatype::hvector(256, 1, 4096, &inner).unwrap()
    };
    g.bench_function("nested_vector_walk", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for blk in SegIter::new(black_box(&nested), 1) {
                total += blk.len;
            }
            total
        });
    });
    let sub = Datatype::subarray(&[256, 256], &[256, 128], &[0, 64], ArrayOrder::C, &Datatype::f64())
        .unwrap();
    g.bench_function("subarray_walk", |b| {
        b.iter(|| SegIter::new(black_box(&sub), 1).count());
    });
    g.finish();
}

criterion_group!(benches, bench_construction, bench_commit, bench_segment_iteration);
criterion_main!(benches);
