//! Wall-clock benchmarks of the pack engine — the §4.3 claim ("MPI_Pack
//! is as efficient as a user-coded copying loop") tested against *this*
//! implementation: the engine's strided fast path must keep up with a
//! hand-written gather loop, and the generic segment walk must stay
//! within a small factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nonctg_datatype::{
    as_bytes, available_tiers, pack_into, pack_into_uncompiled, pack_threads, simd_tier,
    ArrayOrder, Datatype, PackPlan,
};
use std::hint::black_box;

fn hand_gather_stride2(src: &[f64], dst: &mut [f64]) {
    for (i, d) in dst.iter_mut().enumerate() {
        *d = src[2 * i];
    }
}

fn bench_pack_vs_hand_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_vs_hand_loop");
    g.sample_size(20);
    for &n in &[1usize << 12, 1 << 16, 1 << 20] {
        let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        let mut out = vec![0u8; n * 8];
        let mut outf = vec![0.0f64; n];

        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::new("hand_loop", n), &n, |b, _| {
            b.iter(|| hand_gather_stride2(black_box(&src), black_box(&mut outf)));
        });
        g.bench_with_input(BenchmarkId::new("pack_strided_path", n), &n, |b, _| {
            b.iter(|| {
                pack_into(black_box(as_bytes(&src)), 0, &vec_t, 1, black_box(&mut out)).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_pack_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_paths");
    g.sample_size(20);
    let n = 1usize << 16;
    let src: Vec<f64> = (0..4 * n).map(|i| i as f64).collect();
    let mut out = vec![0u8; n * 8];

    // contiguous: one memcpy
    let contig = Datatype::contiguous(n, &Datatype::f64()).unwrap().commit();
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("contiguous_memcpy", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &contig, 1, &mut out).unwrap());
    });

    // strided: vector / subarray (fast path)
    let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
    g.bench_function("vector_stride2", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &vec_t, 1, &mut out).unwrap());
    });
    let sub_t = Datatype::subarray(&[n, 2], &[n, 1], &[0, 0], ArrayOrder::C, &Datatype::f64())
        .unwrap()
        .commit();
    g.bench_function("subarray_stride2", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &sub_t, 1, &mut out).unwrap());
    });

    // blocked strided: bigger memcpy units
    let blk = Datatype::vector(n / 64, 64, 128, &Datatype::f64()).unwrap().commit();
    g.bench_function("vector_block64", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &blk, 1, &mut out).unwrap());
    });

    // irregular: generic segment walk
    let blocks: Vec<(usize, i64)> = (0..n / 4)
        .map(|j| (4usize, (j * 16 + (j % 3)) as i64))
        .collect();
    let idx = Datatype::indexed(&blocks, &Datatype::f64()).unwrap().commit();
    g.bench_function("indexed_generic_walk", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &idx, 1, &mut out).unwrap());
    });
    g.finish();
}

/// Compiled plan (cached kernel program) vs. the per-call uncompiled
/// engine, across the paper's three non-contiguous shapes.
fn bench_plan_vs_uncompiled(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_vs_uncompiled");
    g.sample_size(20);
    for &n in &[1usize << 12, 1 << 16, 1 << 20] {
        let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        let mut out = vec![0u8; n * 8];
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::new("strided_uncompiled", n), &n, |b, _| {
            b.iter(|| {
                pack_into_uncompiled(black_box(as_bytes(&src)), 0, &vec_t, 1, &mut out).unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("strided_plan_cached", n), &n, |b, _| {
            b.iter(|| {
                pack_into(black_box(as_bytes(&src)), 0, &vec_t, 1, &mut out).unwrap()
            });
        });
    }

    // Subarray and struct shapes at 2^16 elements.
    let n = 1usize << 16;
    let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
    let mut out = vec![0u8; n * 8];
    g.throughput(Throughput::Bytes((n * 8) as u64));
    let sub_t = Datatype::subarray(&[n / 64, 128], &[n / 64, 64], &[0, 32], ArrayOrder::C, &Datatype::f64())
        .unwrap()
        .commit();
    g.bench_function("subarray_uncompiled", |b| {
        b.iter(|| pack_into_uncompiled(black_box(as_bytes(&src)), 0, &sub_t, 1, &mut out).unwrap());
    });
    g.bench_function("subarray_plan_cached", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &sub_t, 1, &mut out).unwrap());
    });
    let st_t = Datatype::structure(&[(1, 0, Datatype::i32()), (1, 8, Datatype::f64())])
        .unwrap()
        .commit();
    let st_count = n * 8 / 12;
    let st_src: Vec<u8> = (0..st_count * 16).map(|i| i as u8).collect();
    g.throughput(Throughput::Bytes((st_count * 12) as u64));
    g.bench_function("struct_uncompiled", |b| {
        b.iter(|| {
            pack_into_uncompiled(black_box(&st_src), 0, &st_t, st_count, &mut out).unwrap()
        });
    });
    g.bench_function("struct_plan_cached", |b| {
        b.iter(|| pack_into(black_box(&st_src), 0, &st_t, st_count, &mut out).unwrap());
    });
    g.finish();
}

/// Partitioned parallel pack: one worker vs. the configured pool on a
/// 64 MB strided payload. On a single-core runner the two coincide; the
/// >= 1.5x win needs a multi-core machine.
fn bench_pack_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_threads");
    g.sample_size(10);
    let n = 8usize << 20; // 8M f64 = 64 MB packed out of a 128 MB source
    let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
    let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap();
    let plan = PackPlan::compile(&vec_t, 1).unwrap();
    let mut out = vec![0u8; n * 8];
    let workers = pack_threads().max(2);
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("threads_1", |b| {
        b.iter(|| plan.pack_into_with(black_box(as_bytes(&src)), 0, &mut out, 1).unwrap());
    });
    g.bench_function(format!("threads_{workers}"), |b| {
        b.iter(|| {
            plan.pack_into_with(black_box(as_bytes(&src)), 0, &mut out, workers).unwrap()
        });
    });
    g.finish();
}

/// The runtime-dispatched kernel tiers head to head through the forced
/// plan hook, on the shapes the SIMD kernels target: the 8-byte strided
/// gather, the pshufb struct record, an odd-block (loose-16) vector,
/// and streaming stores on vs. off at a past-LLC payload.
fn bench_simd_tiers(c: &mut Criterion) {
    let mut g = c.benchmark_group("simd_tiers");
    g.sample_size(10);

    let n = 1usize << 17; // 1 MB packed
    let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
    let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap();
    let plan = PackPlan::compile(&vec_t, 1).unwrap();
    let mut out = vec![0u8; n * 8];
    g.throughput(Throughput::Bytes((n * 8) as u64));
    for tier in available_tiers() {
        g.bench_with_input(BenchmarkId::new("strided8_1MB", tier.name()), &tier, |b, &t| {
            b.iter(|| {
                plan.pack_into_forced(black_box(as_bytes(&src)), 0, &mut out, 1, t, false)
                    .unwrap()
            });
        });
    }

    let st_t = Datatype::structure(&[(1, 0, Datatype::i32()), (1, 8, Datatype::f64())]).unwrap();
    let count = (1usize << 20) / 12;
    let st_src: Vec<u8> = (0..count * 16).map(|i| i as u8).collect();
    let st_plan = PackPlan::compile(&st_t, count).unwrap();
    let mut st_out = vec![0u8; count * 12];
    g.throughput(Throughput::Bytes((count * 12) as u64));
    for tier in available_tiers() {
        g.bench_with_input(BenchmarkId::new("struct_record_1MB", tier.name()), &tier, |b, &t| {
            b.iter(|| {
                st_plan.pack_into_forced(black_box(&st_src), 0, &mut st_out, 1, t, false).unwrap()
            });
        });
    }

    // 3-byte blocks at stride 7: the loose-16 overlapping-store kernel.
    let nb = (1usize << 20) / 3;
    let loose_t = Datatype::vector(nb, 3, 7, &Datatype::byte()).unwrap();
    let loose_src: Vec<u8> = (0..nb * 7 + 16).map(|i| i as u8).collect();
    let loose_plan = PackPlan::compile(&loose_t, 1).unwrap();
    let mut loose_out = vec![0u8; nb * 3];
    g.throughput(Throughput::Bytes((nb * 3) as u64));
    for tier in available_tiers() {
        g.bench_with_input(BenchmarkId::new("loose3_1MB", tier.name()), &tier, |b, &t| {
            b.iter(|| {
                loose_plan
                    .pack_into_forced(black_box(&loose_src), 0, &mut loose_out, 1, t, false)
                    .unwrap()
            });
        });
    }

    // Streaming stores on vs. off at 64 MB (past any LLC) on the
    // process-selected tier; identical on tiers without NT kernels.
    let nbig = 8usize << 20;
    let big: Vec<f64> = (0..2 * nbig).map(|i| i as f64).collect();
    let big_plan = PackPlan::compile(&Datatype::vector(nbig, 1, 2, &Datatype::f64()).unwrap(), 1)
        .unwrap();
    let mut big_out = vec![0u8; nbig * 8];
    g.throughput(Throughput::Bytes((nbig * 8) as u64));
    for stream in [false, true] {
        g.bench_function(format!("strided8_64MB_stream_{stream}"), |b| {
            b.iter(|| {
                big_plan
                    .pack_into_forced(black_box(as_bytes(&big)), 0, &mut big_out, 1, simd_tier(), stream)
                    .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("unpack");
    g.sample_size(20);
    let n = 1usize << 16;
    let packed: Vec<u8> = (0..n * 8).map(|i| i as u8).collect();
    let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
    let mut dst = vec![0u8; 2 * n * 8];
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("unpack_stride2", |b| {
        b.iter(|| {
            nonctg_datatype::unpack_from(black_box(&packed), &vec_t, 1, &mut dst, 0).unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pack_vs_hand_loop,
    bench_pack_paths,
    bench_plan_vs_uncompiled,
    bench_pack_threads,
    bench_simd_tiers,
    bench_unpack
);
criterion_main!(benches);
