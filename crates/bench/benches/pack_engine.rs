//! Wall-clock benchmarks of the pack engine — the §4.3 claim ("MPI_Pack
//! is as efficient as a user-coded copying loop") tested against *this*
//! implementation: the engine's strided fast path must keep up with a
//! hand-written gather loop, and the generic segment walk must stay
//! within a small factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nonctg_datatype::{as_bytes, pack_into, ArrayOrder, Datatype};
use std::hint::black_box;

fn hand_gather_stride2(src: &[f64], dst: &mut [f64]) {
    for (i, d) in dst.iter_mut().enumerate() {
        *d = src[2 * i];
    }
}

fn bench_pack_vs_hand_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_vs_hand_loop");
    g.sample_size(20);
    for &n in &[1usize << 12, 1 << 16, 1 << 20] {
        let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        let mut out = vec![0u8; n * 8];
        let mut outf = vec![0.0f64; n];

        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::new("hand_loop", n), &n, |b, _| {
            b.iter(|| hand_gather_stride2(black_box(&src), black_box(&mut outf)));
        });
        g.bench_with_input(BenchmarkId::new("pack_strided_path", n), &n, |b, _| {
            b.iter(|| {
                pack_into(black_box(as_bytes(&src)), 0, &vec_t, 1, black_box(&mut out)).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_pack_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_paths");
    g.sample_size(20);
    let n = 1usize << 16;
    let src: Vec<f64> = (0..4 * n).map(|i| i as f64).collect();
    let mut out = vec![0u8; n * 8];

    // contiguous: one memcpy
    let contig = Datatype::contiguous(n, &Datatype::f64()).unwrap().commit();
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("contiguous_memcpy", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &contig, 1, &mut out).unwrap());
    });

    // strided: vector / subarray (fast path)
    let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
    g.bench_function("vector_stride2", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &vec_t, 1, &mut out).unwrap());
    });
    let sub_t = Datatype::subarray(&[n, 2], &[n, 1], &[0, 0], ArrayOrder::C, &Datatype::f64())
        .unwrap()
        .commit();
    g.bench_function("subarray_stride2", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &sub_t, 1, &mut out).unwrap());
    });

    // blocked strided: bigger memcpy units
    let blk = Datatype::vector(n / 64, 64, 128, &Datatype::f64()).unwrap().commit();
    g.bench_function("vector_block64", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &blk, 1, &mut out).unwrap());
    });

    // irregular: generic segment walk
    let blocks: Vec<(usize, i64)> = (0..n / 4)
        .map(|j| (4usize, (j * 16 + (j % 3)) as i64))
        .collect();
    let idx = Datatype::indexed(&blocks, &Datatype::f64()).unwrap().commit();
    g.bench_function("indexed_generic_walk", |b| {
        b.iter(|| pack_into(black_box(as_bytes(&src)), 0, &idx, 1, &mut out).unwrap());
    });
    g.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("unpack");
    g.sample_size(20);
    let n = 1usize << 16;
    let packed: Vec<u8> = (0..n * 8).map(|i| i as u8).collect();
    let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
    let mut dst = vec![0u8; 2 * n * 8];
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("unpack_stride2", |b| {
        b.iter(|| {
            nonctg_datatype::unpack_from(black_box(&packed), &vec_t, 1, &mut dst, 0).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_pack_vs_hand_loop, bench_pack_paths, bench_unpack);
criterion_main!(benches);
