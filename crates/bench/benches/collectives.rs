//! Harness-throughput benchmarks of the collective layer: wall-clock cost
//! of running collectives through the simulator at increasing rank counts
//! (the simulator must scale to the multi-rank §4.7 experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonctg_core::{ReduceOp, Universe};
use nonctg_simnet::Platform;

fn quiet() -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    p
}

fn bench_bcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_bcast");
    g.sample_size(10);
    for &ranks in &[2usize, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &n| {
            b.iter(|| {
                Universe::run(quiet(), n, |comm| {
                    let mut buf = vec![1.0f64; 1024];
                    comm.bcast(&mut buf, 0).unwrap();
                    buf[0]
                })
            });
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_allreduce");
    g.sample_size(10);
    for &ranks in &[2usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &n| {
            b.iter(|| {
                Universe::run(quiet(), n, |comm| {
                    let mut v = vec![comm.rank() as f64; 4096];
                    comm.allreduce(&mut v, ReduceOp::Sum).unwrap();
                    v[0]
                })
            });
        });
    }
    g.finish();
}

fn bench_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_alltoall");
    g.sample_size(10);
    for &ranks in &[4usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &n| {
            b.iter(|| {
                Universe::run(quiet(), n, move |comm| {
                    let send = vec![comm.rank() as u64; 256 * n];
                    let mut recv = vec![0u64; 256 * n];
                    comm.alltoall(&send, &mut recv, 256).unwrap();
                    recv[0]
                })
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bcast, bench_allreduce, bench_alltoall);
criterion_main!(benches);
