//! Wall-clock benchmarks of the send datapath: monolithic vs. pipelined
//! chunked rendezvous across message sizes, and the pool-backed eager
//! path. Virtual-time results are identical by construction (see
//! `chunk_props`); this group tracks what the pipelining actually buys
//! in host wall-clock, which is what figure regeneration time is made of.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nonctg_core::Universe;
use nonctg_datatype::{as_bytes, Datatype};
use nonctg_simnet::Platform;

/// One strided-vector rendezvous ping (plus a zero-byte ack so both ranks
/// finish together) through a fresh two-rank universe.
fn vector_ping(platform: &Platform, bytes: usize) {
    let elems = bytes / 8;
    Universe::run_pair(platform.clone(), move |comm| {
        if comm.rank() == 0 {
            let src = vec![1.0f64; 2 * elems];
            let t = Datatype::vector(elems, 1, 2, &Datatype::f64()).unwrap().commit();
            comm.send(as_bytes(&src), 0, &t, 1, 1, 1).unwrap();
            let mut ack = [0.0f64; 0];
            comm.recv_slice(&mut ack, Some(1), Some(2)).unwrap();
        } else {
            let mut dst = vec![0.0f64; elems];
            comm.recv_slice(&mut dst, Some(0), Some(1)).unwrap();
            comm.send_slice::<f64>(&[], 0, 2).unwrap();
        }
        comm.wtime()
    });
}

fn bench_rendezvous(c: &mut Criterion) {
    let mut g = c.benchmark_group("datapath");
    g.sample_size(10);
    let mono = Platform::skx_impi().without_pipeline();
    // Threshold 1 streams every size so the small points compare the two
    // paths too; the chunk size is the production default (2 MiB).
    let chunked = Platform::skx_impi().with_pipeline(1, 2 << 20);
    for shift in [16usize, 20, 24, 27] {
        let bytes = 1usize << shift;
        g.throughput(Throughput::Bytes(bytes as u64));
        g.bench_with_input(BenchmarkId::new("monolithic", bytes), &bytes, |b, &n| {
            b.iter(|| vector_ping(&mono, n));
        });
        g.bench_with_input(BenchmarkId::new("chunked", bytes), &bytes, |b, &n| {
            b.iter(|| vector_ping(&chunked, n));
        });
    }
    g.finish();
}

fn bench_eager_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("datapath_eager");
    g.sample_size(10);
    let platform = Platform::skx_impi();
    // 32 contiguous eager ping-pongs inside one universe: after the first,
    // every payload buffer comes out of the fabric pool with its bytes
    // intact (no memset), so this tracks the zero-copy staging win.
    let elems = 2048; // 16 KiB — below every platform's eager limit.
    g.throughput(Throughput::Bytes((32 * elems * 8) as u64));
    g.bench_function("pooled_32x16KiB", |b| {
        b.iter(|| {
            Universe::run_pair(platform.clone(), move |comm| {
                let src = vec![1.0f64; elems];
                let mut dst = vec![0.0f64; elems];
                for _ in 0..32 {
                    if comm.rank() == 0 {
                        comm.send_slice(&src, 1, 1).unwrap();
                        comm.recv_slice(&mut dst, Some(1), Some(2)).unwrap();
                    } else {
                        comm.recv_slice(&mut dst, Some(0), Some(1)).unwrap();
                        comm.send_slice(&src, 0, 2).unwrap();
                    }
                }
                comm.wtime()
            })
        });
    });
    g.finish();
}

criterion_group!(benches, bench_rendezvous, bench_eager_pool);
criterion_main!(benches);
